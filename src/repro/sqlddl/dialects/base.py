"""The dialect frontend contract.

A frontend owns everything vendor-specific about turning one ``.sql``
blob into the **canonical** statement AST of :mod:`repro.sqlddl.ast`:
lexer quirks (quoting styles, cast operators), statement grammar deltas
(``ALTER TABLE ONLY``, ``WITHOUT ROWID``) and type normalization
(SERIAL families, SQLite's type affinity).  Everything downstream —
schema building, ``core.diff``, SMO inference, taxa classification, the
advisor — consumes that one AST and never learns which vendor produced
it.

The split of responsibilities is deliberate:

- ``preprocess`` rewrites raw text *before* lexing, for constructs the
  shared lexer cannot tokenize (PostgreSQL's ``::type`` casts, ``COPY
  ... FROM stdin`` data blocks);
- the shared recursive-descent :class:`~repro.sqlddl.parser.Parser`
  already speaks the union grammar (all three quoting styles,
  ``ALTER TABLE ONLY``, trailing table options such as ``WITHOUT
  ROWID``), so frontends do not fork the parser;
- ``normalize_column_type`` rewrites parsed column types *after*
  parsing, so loose-typing vendors (SQLite) collapse onto their
  affinity classes deterministically.

The MySQL frontend is a strict identity wrapper over
:func:`~repro.sqlddl.parser.parse_script` — the pre-dialect parse path
— which is what keeps default (``--dialects mysql``) corpus output
byte-identical to earlier releases.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Protocol, runtime_checkable

from repro.sqlddl.ast import AlterAction, AlterTable, CreateTable, Statement
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script
from repro.sqlddl.types import DataType


@runtime_checkable
class DialectFrontend(Protocol):
    """What a pluggable dialect implementation must provide."""

    #: Canonical frontend name (``"mysql"``, ``"postgresql"``, ``"sqlite"``).
    name: str
    #: The detection enum member this frontend parses for.
    dialect: Dialect

    def preprocess(self, text: str) -> str:
        """Rewrite raw DDL text before lexing (vendor-only syntax)."""
        ...

    def normalize_column_type(self, data_type: DataType) -> DataType:
        """Map one parsed column type onto its canonical form."""
        ...

    def parse(self, text: str, strict: bool = False) -> list[Statement]:
        """Parse *text* into the canonical statement AST."""
        ...


class BaseFrontend:
    """Shared frontend skeleton: preprocess → shared parser → type pass.

    Subclasses override :meth:`preprocess` and/or
    :meth:`normalize_column_type`; both default to identity, so the
    base class alone already parses generic SQL.
    """

    name = "generic"
    dialect = Dialect.UNKNOWN
    #: Grammar delta: admit column definitions without a data type.
    typeless_columns = False

    def preprocess(self, text: str) -> str:
        return text

    def normalize_column_type(self, data_type: DataType) -> DataType:
        return data_type

    def parse(self, text: str, strict: bool = False) -> list[Statement]:
        statements = parse_script(
            self.preprocess(text),
            strict=strict,
            typeless_columns=self.typeless_columns,
        )
        return [self._rewrite(statement) for statement in statements]

    # -- the post-parse type pass --------------------------------------

    def _rewrite(self, statement: Statement) -> Statement:
        if isinstance(statement, CreateTable):
            columns = tuple(self._rewrite_column(c) for c in statement.columns)
            if all(a is b for a, b in zip(columns, statement.columns)):
                return statement
            return replace(statement, columns=columns)
        if isinstance(statement, AlterTable):
            actions = tuple(self._rewrite_action(a) for a in statement.actions)
            if all(a is b for a, b in zip(actions, statement.actions)):
                return statement
            return replace(statement, actions=actions)
        return statement

    def _rewrite_action(self, action: AlterAction) -> AlterAction:
        if action.column is None:
            return action
        column = self._rewrite_column(action.column)
        if column is action.column:
            return action
        return replace(action, column=column)

    def _rewrite_column(self, column):
        data_type = self.normalize_column_type(column.data_type)
        if data_type == column.data_type:
            return column
        return replace(column, data_type=data_type)
