"""Pluggable DDL dialect frontends.

One :class:`~repro.sqlddl.dialects.base.DialectFrontend` per supported
vendor, every one producing the **same** canonical AST
(:mod:`repro.sqlddl.ast`), so the measurement machinery — schema
building, diffing, SMO inference, taxa, the advisor — is dialect-blind.

The registry below is the single naming authority for the rest of the
system: store rows, ``--dialects`` flags, API filter values and loadgen
families all use the canonical frontend names ``"mysql"``,
``"postgresql"`` and ``"sqlite"``.  :func:`frontend_for` also accepts
loose vendor spellings (``postgres``, ``pgsql``, ``mariadb``, ...) and
:class:`~repro.sqlddl.dialect.Dialect` members, resolving them through
the same alias table detection uses.
"""

from __future__ import annotations

from repro.sqlddl.dialect import Dialect
from repro.sqlddl.dialects.base import BaseFrontend, DialectFrontend
from repro.sqlddl.dialects.mysql import MySqlFrontend
from repro.sqlddl.dialects.postgresql import PostgresFrontend
from repro.sqlddl.dialects.sqlite import SqliteFrontend
from repro.sqlddl.errors import UnsupportedDialectError

#: The canonical registry, in documented precedence order.
FRONTENDS: dict[str, DialectFrontend] = {
    frontend.name: frontend
    for frontend in (MySqlFrontend(), PostgresFrontend(), SqliteFrontend())
}

#: Canonical frontend name per detectable dialect (where one exists).
_BY_DIALECT: dict[Dialect, str] = {
    frontend.dialect: name for name, frontend in FRONTENDS.items()
}

#: The default frontend — the paper's DBMS and the byte-compat baseline.
DEFAULT_DIALECT = "mysql"


def canonical_dialect_name(name: str | Dialect) -> str:
    """Resolve a loose vendor spelling to a canonical frontend name.

    Raises :class:`~repro.sqlddl.errors.UnsupportedDialectError` for
    vendors without a frontend (mssql, oracle) and unknown spellings.
    """
    dialect = name if isinstance(name, Dialect) else None
    if dialect is None:
        lowered = str(name).lower()
        if lowered in FRONTENDS:
            return lowered
        dialect = Dialect.from_name(lowered)  # raises on unknown names
    canonical = _BY_DIALECT.get(dialect)
    if canonical is None:
        raise UnsupportedDialectError(
            f"no dialect frontend for {dialect.value!r}"
            f" (available: {', '.join(FRONTENDS)})"
        )
    return canonical


def frontend_for(name: str | Dialect) -> DialectFrontend:
    """The frontend registered under *name* (loose spellings accepted)."""
    return FRONTENDS[canonical_dialect_name(name)]


def parse_script_for(text: str, dialect: str | Dialect = DEFAULT_DIALECT, strict: bool = False):
    """Parse *text* through the named dialect's frontend."""
    return frontend_for(dialect).parse(text, strict=strict)


__all__ = [
    "BaseFrontend",
    "DEFAULT_DIALECT",
    "DialectFrontend",
    "FRONTENDS",
    "MySqlFrontend",
    "PostgresFrontend",
    "SqliteFrontend",
    "canonical_dialect_name",
    "frontend_for",
    "parse_script_for",
]
