"""A lexer for real-world SQL dump files.

Real ``.sql`` files in FOSS repositories are noisy: MySQL conditional
comments (``/*!40101 ... */``), ``--`` and ``#`` line comments, backtick
or double-quote or bracket-quoted identifiers, doubled-quote escapes,
backslash escapes, and the occasional stray byte.  The lexer is built to
never crash on that noise: anything it cannot classify becomes an
OPERATOR token and the parser decides whether it matters.

Implementation note: the study parses every version of every schema
history, so lexing is the hottest loop of the whole pipeline.  Tokens
are produced by one compiled master regex rather than per-character
dispatch (about 10x faster on CPython).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.sqlddl.errors import SqlLexError
from repro.sqlddl.tokens import Token, TokenKind

_MASTER = re.compile(
    r"""
      (?P<WS>[ \t\r\n\f\v]+)
    | (?P<LINECOMMENT>--[^\n]*|\#[^\n]*)
    | (?P<EXECOPEN>/\*!\d*)
    | (?P<BLOCKCOMMENT>/\*(?!!)(?:[^*]|\*(?!/))*\*/)
    | (?P<EXECCLOSE>\*/)
    | (?P<STRING>'(?:[^'\\]|\\.|'')*')
    | (?P<BACKTICK>`(?:[^`]|``)*`)
    | (?P<DQUOTE>"(?:[^"]|"")*")
    | (?P<BRACKET>\[[^\]]*\])
    | (?P<NUMBER>[0-9]+(?:\.[0-9]+)?)
    | (?P<WORD>[A-Za-z_$][A-Za-z0-9_$]*)
    | (?P<VARIABLE>@@?[A-Za-z0-9_$]*)
    | (?P<PUNCT>[(),;.])
    """,
    re.VERBOSE | re.DOTALL,
)

_PUNCT_KINDS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ".": TokenKind.DOT,
}

_STRING_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}

_ESCAPE_RE = re.compile(r"\\(.)|''", re.DOTALL)


def _decode_string(raw: str) -> str:
    """Resolve backslash escapes and doubled quotes in a string body."""
    body = raw[1:-1]
    if "\\" not in body and "''" not in body:
        return body

    def replace(match: re.Match[str]) -> str:
        escaped = match.group(1)
        if escaped is None:  # matched ''
            return "'"
        return _STRING_ESCAPES.get(escaped, escaped)

    return _ESCAPE_RE.sub(replace, body)


class Lexer:
    """Streaming tokenizer over a SQL script.

    Parameters
    ----------
    text:
        Full text of the ``.sql`` file.
    keep_comments:
        When True, MySQL *executable* comments (``/*! ... */``) are
        re-lexed inline, because they often hide the very DDL we need
        (mysqldump wraps ``CREATE TABLE`` options in them).  Plain
        comments are always skipped.
    strict:
        When True (the default), unterminated quoted regions and block
        comments raise :class:`SqlLexError`.  When False — the mode the
        script-level parser uses, since mining must survive binary junk
        committed as ``.sql`` — the offending opener degrades to an
        OPERATOR token and lexing continues.
    """

    def __init__(self, text: str, keep_comments: bool = True, strict: bool = True) -> None:
        self._text = text
        self._keep_executable = keep_comments
        self._strict = strict

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF; the final token is always EOF."""
        text = self._text
        length = len(text)
        pos = 0
        line = 1
        line_start = 0
        match = _MASTER.match

        def advance_lines(chunk: str, start: int) -> None:
            nonlocal line, line_start
            line += chunk.count("\n")
            line_start = start + chunk.rfind("\n") + 1

        while pos < length:
            m = match(text, pos)
            if m is None:
                ch = text[pos]
                if self._strict and ch in "'`\"[":
                    raise SqlLexError(
                        f"unterminated {ch!r}-quoted region", line, pos - line_start + 1
                    )
                if text.startswith("/*", pos):
                    if self._strict:
                        raise SqlLexError(
                            "unterminated block comment", line, pos - line_start + 1
                        )
                    break  # lenient: the rest of the file is comment
                yield Token(TokenKind.OPERATOR, ch, line, pos - line_start + 1)
                pos += 1
                continue
            kind = m.lastgroup
            raw = m.group()
            column = pos - line_start + 1
            end = m.end()
            if kind == "WS" or kind == "LINECOMMENT" or kind == "BLOCKCOMMENT":
                if "\n" in raw:
                    advance_lines(raw, pos)
                pos = end
                continue
            if kind == "EXECOPEN":
                if self._keep_executable:
                    pos = end  # lex the body inline; EXECCLOSE eats '*/'
                    continue
                closing = text.find("*/", end)
                if closing < 0:
                    if self._strict:
                        raise SqlLexError("unterminated block comment", line, column)
                    break  # lenient: the rest of the file is comment
                advance_lines(text[pos : closing + 2], pos)
                pos = closing + 2
                continue
            if kind == "EXECCLOSE":
                pos = end
                continue
            if kind == "STRING":
                yield Token(TokenKind.STRING, _decode_string(raw), line, column)
            elif kind == "BACKTICK":
                yield Token(TokenKind.QUOTED_IDENT, raw[1:-1].replace("``", "`"), line, column)
            elif kind == "DQUOTE":
                yield Token(TokenKind.QUOTED_IDENT, raw[1:-1].replace('""', '"'), line, column)
            elif kind == "BRACKET":
                yield Token(TokenKind.QUOTED_IDENT, raw[1:-1], line, column)
            elif kind == "NUMBER":
                yield Token(TokenKind.NUMBER, raw, line, column)
            elif kind == "WORD":
                yield Token(TokenKind.WORD, raw, line, column)
            elif kind == "VARIABLE":
                yield Token(TokenKind.VARIABLE, raw, line, column)
            else:  # PUNCT
                yield Token(_PUNCT_KINDS[raw], raw, line, column)
            if "\n" in raw:
                advance_lines(raw, pos)
            pos = end
        yield Token(TokenKind.EOF, "", line, pos - line_start + 1)


def tokenize(text: str, keep_comments: bool = True, strict: bool = True) -> list[Token]:
    """Tokenize *text* fully; convenience wrapper around :class:`Lexer`."""
    return list(Lexer(text, keep_comments=keep_comments, strict=strict).tokens())
