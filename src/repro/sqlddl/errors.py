"""Exception types for the SQL DDL substrate."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all errors raised by :mod:`repro.sqlddl`."""


class SqlSyntaxError(SqlError):
    """A statement could not be parsed.

    Carries the 1-based line/column of the offending token so callers can
    report the position inside the original ``.sql`` file.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SqlLexError(SqlSyntaxError):
    """The raw text could not even be tokenized (e.g. unterminated string)."""


class UnsupportedDialectError(SqlError):
    """A dialect name was requested that the substrate does not model."""
