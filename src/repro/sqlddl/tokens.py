"""Token model for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token.

    The lexer is deliberately coarse: everything that is not punctuation,
    a literal or an identifier-like word is simply a WORD, and keyword
    recognition happens in the parser (SQL keywords are not reserved in
    the wild — real dumps name columns ``key``, ``order``, ``type`` ...).
    """

    WORD = "word"  # identifier or keyword, case preserved
    QUOTED_IDENT = "quoted_ident"  # `name`, "name" or [name]
    STRING = "string"  # 'literal' (quotes stripped, escapes resolved)
    NUMBER = "number"  # integer or decimal literal
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMICOLON = ";"
    DOT = "."
    OPERATOR = "operator"  # =, <, >, +, -, *, /, %, etc.
    VARIABLE = "variable"  # @var or @@system_var
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_word(self, *words: str) -> bool:
        """True if this token is a WORD equal (case-insensitively) to any of *words*."""
        return self.kind is TokenKind.WORD and self.value.upper() in words

    @property
    def upper(self) -> str:
        """Uppercased token text; convenient for keyword comparisons."""
        return self.value.upper()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.value!r})@{self.line}:{self.column}"
