"""SQL DDL substrate: lexing, parsing and rendering of MySQL-flavoured DDL.

The paper's toolchain (Hecate) consumes the ``CREATE TABLE`` statements of
a schema file and turns them into a logical schema.  This subpackage is a
from-scratch implementation of that front end: a lexer tolerant of the
noise found in real-world ``.sql`` dumps (comments, ``INSERT`` statements,
DBMS directives), a recursive-descent parser for the DDL statements that
matter at the logical level, and a writer that renders a schema back to
canonical DDL text (used by the synthetic-corpus realizer).
"""

from repro.sqlddl.errors import SqlSyntaxError, UnsupportedDialectError
from repro.sqlddl.tokens import Token, TokenKind
from repro.sqlddl.lexer import Lexer, tokenize
from repro.sqlddl.types import DataType, normalize_type
from repro.sqlddl.ast import (
    AlterAction,
    AlterTable,
    ColumnDef,
    CreateTable,
    DropTable,
    IgnoredStatement,
    RenameTable,
    Statement,
    TableConstraint,
)
from repro.sqlddl.parser import Parser, parse_script, parse_statement
from repro.sqlddl.dialect import Dialect, detect_dialect

__all__ = [
    "AlterAction",
    "AlterTable",
    "ColumnDef",
    "CreateTable",
    "DataType",
    "Dialect",
    "DropTable",
    "IgnoredStatement",
    "Lexer",
    "Parser",
    "RenameTable",
    "SqlSyntaxError",
    "Statement",
    "TableConstraint",
    "Token",
    "TokenKind",
    "UnsupportedDialectError",
    "detect_dialect",
    "normalize_type",
    "parse_script",
    "parse_statement",
    "tokenize",
]
