"""SQL DDL substrate: lexing, parsing and rendering of DDL.

The paper's toolchain (Hecate) consumes the ``CREATE TABLE`` statements of
a schema file and turns them into a logical schema.  This subpackage is a
from-scratch implementation of that front end: a lexer tolerant of the
noise found in real-world ``.sql`` dumps (comments, ``INSERT`` statements,
DBMS directives), a recursive-descent parser for the DDL statements that
matter at the logical level, and a writer that renders a schema back to
canonical DDL text (used by the synthetic-corpus realizer).

Vendor-specific syntax lives in :mod:`repro.sqlddl.dialects`: pluggable
frontends (MySQL — the default and the paper's DBMS — PostgreSQL, and
SQLite) that all produce the same canonical AST, so everything past the
parse is dialect-blind.
"""

from repro.sqlddl.errors import SqlSyntaxError, UnsupportedDialectError
from repro.sqlddl.tokens import Token, TokenKind
from repro.sqlddl.lexer import Lexer, tokenize
from repro.sqlddl.types import DataType, normalize_type
from repro.sqlddl.ast import (
    AlterAction,
    AlterTable,
    ColumnDef,
    CreateTable,
    DropTable,
    IgnoredStatement,
    RenameTable,
    Statement,
    TableConstraint,
)
from repro.sqlddl.parser import Parser, parse_script, parse_statement
from repro.sqlddl.dialect import DIALECT_PRECEDENCE, Dialect, detect_dialect
from repro.sqlddl.dialects import (
    DEFAULT_DIALECT,
    FRONTENDS,
    DialectFrontend,
    canonical_dialect_name,
    frontend_for,
    parse_script_for,
)

__all__ = [
    "DEFAULT_DIALECT",
    "DIALECT_PRECEDENCE",
    "DialectFrontend",
    "FRONTENDS",
    "AlterAction",
    "AlterTable",
    "ColumnDef",
    "CreateTable",
    "DataType",
    "Dialect",
    "DropTable",
    "IgnoredStatement",
    "Lexer",
    "Parser",
    "RenameTable",
    "SqlSyntaxError",
    "Statement",
    "TableConstraint",
    "Token",
    "TokenKind",
    "UnsupportedDialectError",
    "canonical_dialect_name",
    "detect_dialect",
    "frontend_for",
    "parse_script_for",
    "normalize_type",
    "parse_script",
    "parse_statement",
    "tokenize",
]
