"""SQL data-type model and cross-version normalization.

The study counts an attribute as *maintained* when its data type changes
between two schema versions.  Deciding "changed" on raw type text would
over-count: MySQL prints ``INT(11)`` and ``int`` for the same logical
type, and synonyms abound (``INTEGER``/``INT``, ``BOOL``/``TINYINT(1)``,
``DEC``/``DECIMAL``...).  :func:`normalize_type` canonicalizes a parsed
type so the differ compares logical types, mirroring how Hecate treats
type equality at the logical level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Synonym table: alias -> canonical base-name.
_SYNONYMS = {
    "INTEGER": "INT",
    "INT4": "INT",
    "INT8": "BIGINT",
    "INT2": "SMALLINT",
    "MIDDLEINT": "MEDIUMINT",
    "DEC": "DECIMAL",
    "NUMERIC": "DECIMAL",
    "FIXED": "DECIMAL",
    "CHARACTER": "CHAR",
    "BOOL": "BOOLEAN",
    "FLOAT4": "FLOAT",
    "FLOAT8": "DOUBLE",
    "REAL": "DOUBLE",
    "SERIAL": "BIGINT",
    "BIGSERIAL": "BIGINT",
    "SMALLSERIAL": "SMALLINT",
    "LONGBLOB": "LONGBLOB",
    "CHARACTER VARYING": "VARCHAR",
    "NVARCHAR": "VARCHAR",
    "NCHAR": "CHAR",
}

#: Types where the length argument is display-width only and does not
#: change the logical type (MySQL integer display width).
_WIDTH_IRRELEVANT = {"INT", "TINYINT", "SMALLINT", "MEDIUMINT", "BIGINT"}

#: Types whose arguments are part of the logical type.
_ARGS_SIGNIFICANT = {"VARCHAR", "CHAR", "DECIMAL", "BINARY", "VARBINARY", "BIT", "ENUM", "SET"}


@dataclass(frozen=True, slots=True)
class DataType:
    """A parsed SQL data type.

    ``base`` is the canonical uppercase name, ``args`` the parenthesised
    arguments that are *logically significant*, and ``unsigned`` the
    MySQL sign modifier (part of the logical type: changing a column
    from ``INT`` to ``INT UNSIGNED`` halves/doubles its domain).
    """

    base: str
    args: tuple[str, ...] = ()
    unsigned: bool = False

    def render(self) -> str:
        """Canonical SQL text for this type."""
        text = self.base
        if self.args:
            text += "(" + ",".join(self.args) + ")"
        if self.unsigned:
            text += " UNSIGNED"
        return text

    def __str__(self) -> str:
        return self.render()


def normalize_type(base: str, args: tuple[str, ...] = (), unsigned: bool = False) -> DataType:
    """Build the canonical :class:`DataType` for a raw parsed type.

    - resolves synonyms (``INTEGER`` -> ``INT``, ``BOOL`` -> ``BOOLEAN``)
    - drops display widths on integer types (``INT(11)`` == ``INT``)
    - special-cases ``TINYINT(1)`` as ``BOOLEAN`` (the MySQL idiom)
    - keeps significant args (``VARCHAR(255)`` != ``VARCHAR(64)``)
    """
    canonical = base.upper().strip()
    canonical = _SYNONYMS.get(canonical, canonical)
    if canonical == "TINYINT" and args == ("1",):
        return DataType("BOOLEAN", (), False)
    if canonical in _WIDTH_IRRELEVANT:
        return DataType(canonical, (), unsigned)
    if canonical in _ARGS_SIGNIFICANT:
        return DataType(canonical, tuple(a.strip() for a in args), unsigned)
    # Everything else (DATETIME, TEXT, BLOB, JSON, user types ...): args
    # such as fractional-second precision are kept verbatim.
    return DataType(canonical, tuple(a.strip() for a in args), unsigned)
