"""Deterministic fault injection for reproducible chaos runs.

Chaos testing of a 100k-repository mining run is only useful when the
chaos is *replayable*: a failure found in CI must fail the same way on
a laptop.  :class:`FaultInjector` therefore derives every decision from
``sha256(seed | site | key)`` — no RNG state, no ordering sensitivity —
so the set of injected faults is a pure function of the seed, and two
runs with the same seed produce byte-identical failure records.

A *site* names a code location that opted into injection (a pipeline
stage name like ``"parse"``, the ingest ``"persist"`` step, the serve
``"store"`` call); the *key* is the unit of work (a project name).
``fail_attempts`` bounds how many attempts of one unit fail, which is
how tests prove a retry policy actually recovers: inject one failing
attempt, watch attempt two succeed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.policy import ResilienceError, stable_fraction


class InjectedFault(ResilienceError):
    """The synthetic failure an armed :class:`FaultInjector` raises."""

    def __init__(self, site: str, key: str) -> None:
        super().__init__(f"injected {site} fault for {key!r}")
        self.site = site
        self.key = key


@dataclass(frozen=True)
class FaultInjector:
    """Seeded, deterministic chaos: the same seed injects the same faults.

    ``rate`` is the target share of keys that fail per site; ``sites``
    restricts injection to the named sites (empty = all participating
    sites); ``fail_attempts=None`` makes a targeted key fail on every
    attempt, ``fail_attempts=n`` only on the first *n* (so retries
    recover).
    """

    seed: int
    rate: float = 0.1
    sites: tuple[str, ...] = ()
    fail_attempts: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.rate <= 1:
            raise ValueError(f"rate must be in 0..1, got {self.rate}")
        if self.fail_attempts is not None and self.fail_attempts < 1:
            raise ValueError(
                f"fail_attempts must be >= 1 or None, got {self.fail_attempts}"
            )

    def targets(self, site: str, key: str) -> bool:
        """Would this injector ever fail (site, key)?  Pure, replayable."""
        if self.sites and site not in self.sites:
            return False
        return stable_fraction(f"{self.seed}|{site}|{key}") < self.rate

    def should_fail(self, site: str, key: str, attempt: int = 1) -> bool:
        if not self.targets(site, key):
            return False
        return self.fail_attempts is None or attempt <= self.fail_attempts

    def check(self, site: str, key: str, attempt: int = 1) -> None:
        """Raise :class:`InjectedFault` when (site, key, attempt) is hit."""
        if self.should_fail(site, key, attempt):
            raise InjectedFault(site, key)
