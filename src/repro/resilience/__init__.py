"""repro.resilience — the reusable policy kernel behind every layer.

One small, stdlib-only package supplies the failure-handling policies
the pipeline (bounded per-project retries + deadlines), the ingest
(checkpointed phases, persist retries), and the serving layer (request
timeouts, store circuit breaker, degraded responses) all share:

=====================  ==================================================
:class:`RetryPolicy`   exponential backoff, deterministic derived jitter
:class:`Deadline`      monotonic time budgets, ``DeadlineExceeded``
:class:`CircuitBreaker` closed/open/half-open guard with registry gauges
:class:`FaultInjector` seeded, replayable chaos (``InjectedFault``)
=====================  ==================================================

Determinism is the design constraint throughout: jitter and injection
decisions are *hashed*, never sampled, so a chaos run is a pure
function of its seed and CI failures replay locally bit-for-bit.
"""

from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.policy import (
    NO_RETRY,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    ResilienceError,
    RetryPolicy,
    call_with_timeout,
    stable_fraction,
)

__all__ = [
    "NO_RETRY",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "InjectedFault",
    "ResilienceError",
    "RetryPolicy",
    "call_with_timeout",
    "stable_fraction",
]
