"""The resilience policy kernel: retries, deadlines, circuit breaking.

Long mining runs over messy real-world corpora fail in boring,
recoverable ways — a flaky clone, a transiently locked store, one
pathological repository that never terminates.  The policies here turn
those into bounded, observable events:

- :class:`RetryPolicy` — exponential backoff whose jitter is *derived*
  (sha256 of the retry key), so two runs of the same corpus schedule
  identical delays and stay byte-for-byte reproducible.
- :class:`Deadline` — a monotonic time budget threaded through a unit
  of work; ``check()`` raises :class:`DeadlineExceeded` the moment the
  budget is gone, and :func:`call_with_timeout` bounds calls that
  cannot be instrumented from the inside (a hung store read).
- :class:`CircuitBreaker` — the classic closed/open/half-open machine
  guarding a shared dependency, publishing its state transitions into a
  metrics registry when one is attached.

Everything is stdlib-only and dependency-free so any layer (pipeline,
ingest, serve, CLI) can import it without cycles.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


class ResilienceError(RuntimeError):
    """Base class of every failure the resilience layer raises itself."""


class DeadlineExceeded(ResilienceError):
    """A time budget ran out; not retryable (retrying cannot add time)."""


class CircuitOpen(ResilienceError):
    """A call was refused because its circuit breaker is open."""


def stable_fraction(key: str) -> float:
    """A uniform-ish float in ``[0, 1)`` derived from *key* alone.

    The shared determinism primitive of this package: retry jitter and
    fault-injection decisions both hash their way to randomness so a
    re-run with the same inputs makes the same choices.
    """
    digest = hashlib.sha256(key.encode("utf-8", errors="replace")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and derived jitter.

    ``max_attempts`` counts the first try: ``1`` means "no retries".
    The delay before attempt ``n + 1`` is ``base_delay * multiplier**
    (n - 1)`` capped at ``max_delay``, then spread by ``±jitter`` using
    :func:`stable_fraction` of the retry key — deterministic, but
    different keys (projects) desynchronize instead of thundering.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in 0..1, got {self.jitter}")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt *attempt* (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and raw > 0:
            spread = 2 * stable_fraction(f"{key}|retry|{attempt}") - 1
            raw *= 1 + self.jitter * spread
        return max(0.0, raw)

    def execute(
        self,
        fn: Callable[[], T],
        key: str = "",
        deadline: "Deadline | None" = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> tuple[T, int]:
        """Call *fn* under this policy; returns ``(result, attempts)``.

        :class:`DeadlineExceeded` is never retried — a fresh attempt
        cannot buy time back.  The last failure propagates unchanged
        once the budget (attempts or deadline) is spent.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(), attempt
            except Exception as exc:
                last = exc
                retryable = (
                    attempt < self.max_attempts
                    and not isinstance(exc, DeadlineExceeded)
                    and (deadline is None or not deadline.expired)
                )
                if not retryable:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.delay_for(attempt, key)
                if deadline is not None:
                    delay = deadline.bound(delay)
                if delay > 0:
                    sleep(delay)
        raise last  # pragma: no cover - loop always returns or raises


#: The identity policy: one attempt, no delays.  The pipeline default,
#: so resilience is strictly opt-in and legacy runs are unchanged.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


class Deadline:
    """A monotonic time budget.  ``seconds=None`` never expires.

    The clock is injectable so tests (and the breaker below) can run
    on synthetic time instead of sleeping.
    """

    __slots__ = ("seconds", "_clock", "_expires_at")

    def __init__(
        self,
        seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    def remaining(self) -> float:
        """Seconds left; ``inf`` for an unlimited deadline, floored at 0."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self.remaining() == 0.0

    def bound(self, delay: float) -> float:
        """Clip a wait so it never outlives the budget."""
        return max(0.0, min(delay, self.remaining()))

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            where = f" at {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds}s exceeded{where}"
            )


def call_with_timeout(fn: Callable[[], T], seconds: float | None) -> T:
    """Run *fn* bounded by *seconds*, raising :class:`DeadlineExceeded`.

    The call runs on a daemon thread so a hang (a wedged store read, a
    blocked socket) cannot pin the caller; the abandoned thread keeps
    running but its result is discarded.  ``seconds=None`` calls *fn*
    inline with no thread at all.
    """
    if seconds is None:
        return fn()
    box: dict[str, object] = {}

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # rethrown on the calling thread
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True, name="deadline-call")
    thread.start()
    thread.join(seconds)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    if "value" in box:
        return box["value"]  # type: ignore[return-value]
    raise DeadlineExceeded(f"call exceeded its {seconds}s deadline")


class CircuitBreaker:
    """Closed/open/half-open guard around one shared dependency.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_timeout`` seconds one probe call is let through (half-open)
    and its outcome closes or re-opens the breaker.  Thread-safe; the
    serving layer shares one instance across handler threads.

    When a registry is attached the breaker publishes::

        repro_breaker_open{breaker=...}                 gauge (1 = open)
        repro_breaker_transitions_total{breaker=,to=}   counter
        repro_breaker_rejections_total{breaker=...}     counter
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        registry=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be positive, got {reset_timeout}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._registry = registry
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        if registry is not None:
            registry.gauge("repro_breaker_open", breaker=name).set(0)

    # -- state machine ------------------------------------------------------

    def _transition(self, state: str) -> None:
        self._state = state
        self._probing = False
        if self._registry is not None:
            self._registry.gauge("repro_breaker_open", breaker=self.name).set(
                int(state == self.OPEN)
            )
            self._registry.counter(
                "repro_breaker_transitions_total", breaker=self.name, to=state
            ).inc()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits one probe.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.reset_timeout:
                    self._count_rejection()
                    return False
                self._transition(self.HALF_OPEN)
            # Half-open: exactly one in-flight probe at a time.
            if self._probing:
                self._count_rejection()
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    def retry_after(self) -> float:
        """Seconds until the next probe may run (0 when calls may flow)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    def guard(self) -> None:
        """Raise :class:`CircuitOpen` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpen(
                f"circuit {self.name!r} is open; retry in {self.retry_after():.1f}s"
            )

    def _count_rejection(self) -> None:
        if self._registry is not None:
            self._registry.counter(
                "repro_breaker_rejections_total", breaker=self.name
            ).inc()
