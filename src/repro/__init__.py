"""repro: reproduction of "Profiles of Schema Evolution in Free Open
Source Software Projects" (P. Vassiliadis, ICDE 2021).

The package rebuilds the paper's full pipeline from scratch:

- :mod:`repro.sqlddl` — MySQL-flavoured DDL lexer/parser;
- :mod:`repro.schema` — the logical schema model and builder;
- :mod:`repro.vcs` — a git-like commit-DAG substrate with file-history
  extraction;
- :mod:`repro.mining` — the GitHub-Activity x Libraries.io collection
  funnel;
- :mod:`repro.core` — Hecate-equivalent diffing, metrics, heartbeat,
  and the taxa classification tree;
- :mod:`repro.advisor` — the migration advisor: proposed DDL in,
  versioned + invertible migration script and taxon-atypicality
  findings out (the write path behind ``POST /v1/.../advise``);
- :mod:`repro.pipeline` — the staged measurement pipeline (parallel
  execution, content-hash caching, fault isolation);
- :mod:`repro.store` / :mod:`repro.serve` — the persistent corpus
  store and its read-only HTTP serving layer (with a hot-path
  rendered-response cache);
- :mod:`repro.loadgen` — deterministic load generation and SLO
  benchmarking against the serving layer (seeded workloads, closed- and
  open-loop drivers, exact percentiles, a declarative SLO gate);
- :mod:`repro.obs` — the unified observability layer (span tracing,
  metrics registry, profiling hooks);
- :mod:`repro.resilience` — the policy kernel (retries, deadlines,
  circuit breaking, deterministic fault injection) every execution
  layer shares;
- :mod:`repro.stats` — Kruskal-Wallis (from scratch), Shapiro-Wilk,
  quartiles, box-plot geometry;
- :mod:`repro.synthesis` — taxon-calibrated synthetic corpus generator
  (the offline stand-in for the 327 cloned GitHub repositories);
- :mod:`repro.viz` / :mod:`repro.reporting` — chart series, ASCII
  rendering, and the per-figure experiment harness.

The stable public API is re-exported here — one front door — while
every deep-module import keeps working unchanged.  Exports resolve
lazily (PEP 562), so ``import repro`` stays cheap and does not drag the
whole pipeline in.

Quickstart
----------
>>> from repro import CorpusSpec, analyze_corpus, build_corpus
>>> corpus = build_corpus(CorpusSpec(seed=2019, scale=0.1))
>>> report = corpus.run_funnel()
>>> analysis = analyze_corpus(report.studied + report.rigid)
"""

__version__ = "1.8.0"

#: The curated public API: exported name -> providing module.
_EXPORTS = {
    # synthesis: build the (synthetic) corpus
    "CorpusSpec": "repro.synthesis",
    "build_corpus": "repro.synthesis",
    # mining: the collection funnel
    "FunnelReport": "repro.mining.funnel",
    "run_funnel": "repro.mining.funnel",
    # core: analysis + taxa
    "analyze_corpus": "repro.core",
    "classify": "repro.core",
    # advisor: migration scripts + atypicality findings
    "Advice": "repro.advisor",
    "AdvisorError": "repro.advisor",
    "MigrationPlan": "repro.advisor",
    "advise": "repro.advisor",
    # pipeline: the staged measurement engine
    "MeasurementPipeline": "repro.pipeline",
    "PipelineConfig": "repro.pipeline",
    "PipelineStats": "repro.pipeline",
    "SchemaCache": "repro.pipeline",
    # store: persistence + incremental ingest
    "CorpusStore": "repro.store",
    "IngestReport": "repro.store",
    "ShardedCorpusStore": "repro.store",
    "ingest_corpus": "repro.store",
    "resolve_store": "repro.store",
    # serve: the HTTP API (reads + the advise write path)
    "ClusterConfig": "repro.serve",
    "ClusterSupervisor": "repro.serve",
    "ROUTES": "repro.serve",
    "create_server": "repro.serve",
    "openapi_document": "repro.serve",
    "serve_cluster": "repro.serve",
    "serve_forever": "repro.serve",
    # loadgen: seeded load generation + the SLO gate
    "LoadConfig": "repro.loadgen",
    "SloSpec": "repro.loadgen",
    "WorkloadModel": "repro.loadgen",
    "load_slo": "repro.loadgen",
    "run_load": "repro.loadgen",
    # resilience: the shared policy kernel
    "CircuitBreaker": "repro.resilience",
    "Deadline": "repro.resilience",
    "FaultInjector": "repro.resilience",
    "RetryPolicy": "repro.resilience",
    # obs: tracing + metrics + profiling
    "MetricsRegistry": "repro.obs",
    "TraceRecorder": "repro.obs",
    "metrics_registry": "repro.obs",
    "profiled": "repro.obs",
    "recording": "repro.obs",
    "trace": "repro.obs",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    """Resolve the curated exports lazily (PEP 562)."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
