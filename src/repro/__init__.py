"""repro: reproduction of "Profiles of Schema Evolution in Free Open
Source Software Projects" (P. Vassiliadis, ICDE 2021).

The package rebuilds the paper's full pipeline from scratch:

- :mod:`repro.sqlddl` — MySQL-flavoured DDL lexer/parser;
- :mod:`repro.schema` — the logical schema model and builder;
- :mod:`repro.vcs` — a git-like commit-DAG substrate with file-history
  extraction;
- :mod:`repro.mining` — the GitHub-Activity x Libraries.io collection
  funnel;
- :mod:`repro.core` — Hecate-equivalent diffing, metrics, heartbeat,
  and the taxa classification tree;
- :mod:`repro.stats` — Kruskal-Wallis (from scratch), Shapiro-Wilk,
  quartiles, box-plot geometry;
- :mod:`repro.synthesis` — taxon-calibrated synthetic corpus generator
  (the offline stand-in for the 327 cloned GitHub repositories);
- :mod:`repro.viz` / :mod:`repro.reporting` — chart series, ASCII
  rendering, and the per-figure experiment harness.

Quickstart
----------
>>> from repro.synthesis import build_corpus, CorpusSpec
>>> from repro.core import analyze_corpus
>>> corpus = build_corpus(CorpusSpec(seed=2019, scale=0.1))
>>> report = corpus.run_funnel()
>>> analysis = analyze_corpus(report.studied + report.rigid)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
