"""Per-taxon calibrated parameter distributions.

Every :class:`FivePoint` below is read off the paper's published
statistics: active commits and total activity come directly from the
quartile table (Fig 12); schema-update period, commit counts, reeds,
table operations and schema sizes from the min/median/max/avg table
(Fig 4), with Q1/Q3 interpolated to respect the published medians and
skew (all the distributions are heavily right-skewed / power-law-like,
as the paper notes).  Project durations (PUP) are calibrated so the
share of projects exceeding 12 and 24 months matches the percentages
quoted per taxon in Sec IV, and the DDL-commit share matches the quoted
4-6%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxa import Taxon
from repro.synthesis.quantiles import FivePoint


@dataclass(frozen=True)
class TaxonArchetype:
    """Everything the planner needs to generate one taxon's projects."""

    taxon: Taxon
    population: int  # the paper's per-taxon project count
    active_commits: FivePoint
    total_activity: FivePoint
    non_active_commits: FivePoint  # extra commits w/o logical change
    sup_months: FivePoint
    pup_months: FivePoint  # tuned so max(PUP, SUP) hits the Sec IV duration shares
    tables_at_start: FivePoint
    table_insertions: FivePoint
    table_deletions: FivePoint
    ddl_commit_share: float  # DDL commits / all project commits
    expansion_share: float  # fraction of activity that is expansion
    flat_line_share: float  # projects whose schema size never changes


ARCHETYPES: dict[Taxon, TaxonArchetype] = {
    Taxon.FROZEN: TaxonArchetype(
        taxon=Taxon.FROZEN,
        population=34,
        active_commits=FivePoint(0, 0, 0, 0, 0),
        total_activity=FivePoint(0, 0, 0, 0, 0),
        non_active_commits=FivePoint(1, 1, 1, 2, 10),
        sup_months=FivePoint(1, 1, 1, 6, 69),
        pup_months=FivePoint(1, 10, 36, 41, 140),
        tables_at_start=FivePoint(1, 1, 2, 8, 227),
        table_insertions=FivePoint(0, 0, 0, 0, 0),
        table_deletions=FivePoint(0, 0, 0, 0, 0),
        ddl_commit_share=0.06,
        expansion_share=0.0,
        flat_line_share=1.0,
    ),
    Taxon.ALMOST_FROZEN: TaxonArchetype(
        taxon=Taxon.ALMOST_FROZEN,
        population=65,
        active_commits=FivePoint(1, 1, 1, 2, 3),
        total_activity=FivePoint(1, 1, 3, 5, 10),
        non_active_commits=FivePoint(0, 1, 1, 2, 10),
        sup_months=FivePoint(1, 2, 6, 14, 99),
        pup_months=FivePoint(1, 2, 22, 37, 140),
        tables_at_start=FivePoint(1, 2, 3, 6, 68),
        table_insertions=FivePoint(0, 0, 0, 0, 2),
        table_deletions=FivePoint(0, 0, 0, 0, 1),
        ddl_commit_share=0.05,
        expansion_share=0.45,
        flat_line_share=0.75,  # "75% of projects having a flat schema line"
    ),
    Taxon.FOCUSED_SHOT_AND_FROZEN: TaxonArchetype(
        taxon=Taxon.FOCUSED_SHOT_AND_FROZEN,
        population=25,
        active_commits=FivePoint(1, 1, 2, 2, 3),
        total_activity=FivePoint(11, 15.5, 23, 31.5, 383),
        non_active_commits=FivePoint(0, 1, 1, 2, 14),
        sup_months=FivePoint(1, 1, 2, 12, 46),
        pup_months=FivePoint(1, 2, 16, 31, 140),
        tables_at_start=FivePoint(1, 2, 4, 7, 47),
        table_insertions=FivePoint(0, 1, 2, 3, 18),
        table_deletions=FivePoint(0, 0, 1, 2, 45),
        ddl_commit_share=0.04,
        expansion_share=0.65,
        flat_line_share=0.36,  # "36% ... attribute injections (flat line)"
    ),
    Taxon.MODERATE: TaxonArchetype(
        taxon=Taxon.MODERATE,
        population=29,
        active_commits=FivePoint(4, 5, 7, 10, 22),
        total_activity=FivePoint(11, 15, 23, 37.5, 88),
        non_active_commits=FivePoint(0, 1, 2, 4, 21),
        sup_months=FivePoint(1, 8, 20, 34, 100),
        pup_months=FivePoint(1, 2, 28, 33, 140),
        tables_at_start=FivePoint(1, 3, 5, 9, 65),
        table_insertions=FivePoint(0, 1, 2, 3, 6),
        table_deletions=FivePoint(0, 0, 0, 1, 4),
        ddl_commit_share=0.05,
        expansion_share=0.65,
        flat_line_share=0.10,  # "10% have a flat line"
    ),
    Taxon.FOCUSED_SHOT_AND_LOW: TaxonArchetype(
        taxon=Taxon.FOCUSED_SHOT_AND_LOW,
        population=20,
        active_commits=FivePoint(4, 5, 6.5, 7, 10),
        total_activity=FivePoint(27, 41.5, 71, 143, 315),
        non_active_commits=FivePoint(1, 2, 3, 5, 9),
        sup_months=FivePoint(1, 6, 17.5, 32, 57),
        pup_months=FivePoint(1, 2, 10, 55, 140),
        tables_at_start=FivePoint(2, 4, 8, 12, 26),
        table_insertions=FivePoint(0, 2, 4.5, 8, 16),
        table_deletions=FivePoint(0, 1, 2.5, 4, 15),
        ddl_commit_share=0.06,
        expansion_share=0.62,
        flat_line_share=0.0,
    ),
    Taxon.ACTIVE: TaxonArchetype(
        taxon=Taxon.ACTIVE,
        population=22,
        active_commits=FivePoint(7, 15, 22, 50.5, 232),
        total_activity=FivePoint(112, 177, 254, 558.5, 3485),
        non_active_commits=FivePoint(1, 7, 14, 30, 284),
        sup_months=FivePoint(1, 14, 31, 52, 100),
        pup_months=FivePoint(1, 14, 75, 80, 140),
        tables_at_start=FivePoint(2, 9, 20, 32, 61),
        table_insertions=FivePoint(0, 10, 24, 40, 301),
        table_deletions=FivePoint(0, 4, 9, 20, 214),
        ddl_commit_share=0.06,
        expansion_share=0.66,
        flat_line_share=0.09,  # 2 of 22 flat
    ),
}

#: Population of projects whose schema file has a single version (the
#: paper's 132 "rigid" projects out of 327 cloned).
HISTORY_LESS_POPULATION = 132

#: Funnel noise populations (Sec III.A): projects removed after cloning.
ZERO_VERSION_POPULATION = 14
NO_CREATE_POPULATION = 24


def archetype_of(taxon: Taxon) -> TaxonArchetype:
    try:
        return ARCHETYPES[taxon]
    except KeyError:
        raise KeyError(f"no archetype for {taxon}") from None
