"""Deterministic name generation for synthetic schemata and projects.

Names are drawn from domain wordlists so generated DDL reads like real
FOSS schemata (``user_account``, ``order_item``, ``created_at`` ...) and
every draw comes from the caller's ``random.Random``, keeping the corpus
reproducible.
"""

from __future__ import annotations

import random

_TABLE_NOUNS = (
    "user", "account", "order", "item", "product", "invoice", "payment",
    "session", "token", "role", "permission", "group", "message", "thread",
    "comment", "post", "page", "tag", "category", "event", "log", "audit",
    "device", "sensor", "reading", "alert", "job", "task", "queue",
    "report", "metric", "config", "setting", "customer", "vendor",
    "shipment", "address", "country", "currency", "language", "file",
    "attachment", "image", "video", "license", "project", "issue",
    "milestone", "sprint", "build", "release", "deploy", "node", "cluster",
    "service", "endpoint", "route", "subscriber", "campaign", "coupon",
    "cart", "wishlist", "review", "rating", "notification", "feed",
    "friend", "follower", "profile", "badge", "achievement", "level",
    "score", "match", "team", "player", "tournament", "ticket", "booking",
    "room", "schedule", "course", "lesson", "quiz", "answer", "question",
    "survey", "response", "contract", "plan", "feature", "experiment",
)

_TABLE_PREFIXES = ("", "", "", "app_", "sys_", "tbl_", "core_")

_COLUMN_NOUNS = (
    "id", "name", "title", "description", "status", "type", "kind",
    "state", "value", "amount", "price", "quantity", "count", "total",
    "code", "slug", "email", "phone", "url", "path", "hash", "token",
    "secret", "key", "label", "note", "body", "content", "summary",
    "position", "rank", "weight", "priority", "level", "score",
    "created_at", "updated_at", "deleted_at", "started_at", "ended_at",
    "published_at", "expires_at", "version", "revision", "locale",
    "timezone", "currency", "language", "ip_address", "user_agent",
    "latitude", "longitude", "width", "height", "size", "length",
    "duration", "capacity", "threshold", "enabled", "visible", "active",
    "archived", "verified", "locked", "featured", "external_id",
    "parent_id", "owner_id", "author_id", "group_id", "source", "target",
    "category", "channel", "domain", "region", "zone", "checksum",
)

_PROJECT_ADJECTIVES = (
    "rapid", "open", "micro", "hyper", "neo", "meta", "proto", "ultra",
    "quick", "smart", "tiny", "mega", "super", "easy", "free", "light",
    "dark", "blue", "red", "green", "silver", "golden", "iron", "stone",
)

_PROJECT_NOUNS = (
    "cms", "shop", "forum", "wiki", "tracker", "board", "chat", "mailer",
    "ledger", "store", "cloud", "monitor", "gateway", "broker", "cache",
    "index", "search", "portal", "dashboard", "planner", "scheduler",
    "registry", "catalog", "archive", "vault", "bridge", "relay", "hub",
)

_OWNER_NAMES = (
    "acme", "umbrella", "initech", "hooli", "globex", "wayne", "stark",
    "wonka", "tyrell", "cyberdyne", "aperture", "dharma", "pied-piper",
    "oscorp", "gringotts", "duff", "vandelay", "sirius", "nakatomi",
)

_SQL_TYPES = (
    "INT", "BIGINT", "SMALLINT", "VARCHAR(255)", "VARCHAR(64)",
    "VARCHAR(32)", "TEXT", "DATETIME", "DATE", "TIMESTAMP", "DECIMAL(10,2)",
    "BOOLEAN", "DOUBLE", "FLOAT", "CHAR(2)", "MEDIUMTEXT", "BLOB",
)


class NameForge:
    """Collision-free name supplier bound to one RNG."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used_tables: set[str] = set()
        self._counter = 0

    def table_name(self) -> str:
        """A fresh table name, unique within this forge."""
        for _ in range(20):
            prefix = self._rng.choice(_TABLE_PREFIXES)
            noun = self._rng.choice(_TABLE_NOUNS)
            candidate = f"{prefix}{noun}"
            if self._rng.random() < 0.35:
                candidate = f"{candidate}_{self._rng.choice(_TABLE_NOUNS)}"
            if candidate not in self._used_tables:
                self._used_tables.add(candidate)
                return candidate
        self._counter += 1
        fallback = f"table_{self._counter:04d}"
        self._used_tables.add(fallback)
        return fallback

    def column_name(self, taken: set[str]) -> str:
        """A column name not already used in the target table."""
        for _ in range(20):
            candidate = self._rng.choice(_COLUMN_NOUNS)
            if candidate not in taken:
                return candidate
        index = len(taken)
        while f"field_{index}" in taken:
            index += 1
        return f"field_{index}"

    def sql_type(self) -> str:
        return self._rng.choice(_SQL_TYPES)

    def project_name(self, taken: set[str]) -> str:
        """A fresh "owner/project" repository name."""
        for _ in range(50):
            owner = self._rng.choice(_OWNER_NAMES)
            name = f"{self._rng.choice(_PROJECT_ADJECTIVES)}-{self._rng.choice(_PROJECT_NOUNS)}"
            candidate = f"{owner}/{name}"
            if candidate not in taken:
                return candidate
        index = len(taken)
        while f"forge/project-{index}" in taken:
            index += 1
        return f"forge/project-{index}"
