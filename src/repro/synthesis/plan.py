"""Project planning: sample target measurements and per-commit budgets.

A plan fixes, before any SQL is written, exactly what the measured
project must look like: how many commits, which of them are active, the
activity (in attributes) of each active commit, the reed structure, the
schema-update period, and the surrounding repository (project duration,
filler commits, merge commits).  The realizer then materializes the plan
as DDL text; tests assert that re-measuring the realized project
recovers the planned numbers exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.heartbeat import DEFAULT_REED_LIMIT
from repro.core.taxa import Taxon
from repro.synthesis.archetypes import TaxonArchetype

_DAYS_PER_MONTH = 30.4375
_SECONDS_PER_DAY = 86_400


@dataclass
class CommitPlan:
    """One planned commit of the DDL file."""

    timestamp: int
    activity: int  # 0 for non-active commits

    @property
    def is_active(self) -> bool:
        return self.activity > 0


@dataclass
class ProjectPlan:
    """The full blueprint of one synthetic project."""

    name: str
    taxon: Taxon
    ddl_path: str
    v0_timestamp: int
    commits: list[CommitPlan]  # transitions, in time order (excl. V0)
    total_activity: int
    active_commits: int
    planned_reeds: int
    sup_months: int
    pup_months: int
    tables_at_start: int
    insert_budget: int  # target table insertions over the lifetime
    delete_budget: int
    expansion_share: float
    flat_line: bool
    growth_discipline: bool  # net table count never falls within a commit
    total_project_commits: int
    project_start: int  # first commit of the whole repository
    domain: str = ""

    @property
    def n_commits(self) -> int:
        """Commits of the DDL file, including V0."""
        return len(self.commits) + 1


def _compose_turf(rng: random.Random, count: int, total: int, cap: int) -> list[int]:
    """Split *total* into *count* parts, each within [1, cap]."""
    if count == 0:
        if total:
            raise ValueError("cannot place activity on zero commits")
        return []
    if not count <= total <= count * cap:
        raise ValueError(f"cannot split {total} into {count} parts of at most {cap}")
    parts = [1] * count
    leftover = total - count
    while leftover > 0:
        open_indices = [i for i, part in enumerate(parts) if part < cap]
        index = rng.choice(open_indices)
        room = min(leftover, cap - parts[index])
        take = rng.randint(1, room)
        parts[index] += take
        leftover -= take
    return parts


def _distribute(
    rng: random.Random,
    parts: list[int],
    caps: list[int | None],
    leftover: int,
    bias: list[float] | None = None,
) -> None:
    """Distribute *leftover* units over *parts* respecting *caps* in place."""
    weights = bias or [1.0] * len(parts)
    while leftover > 0:
        open_indices = [
            i for i, (part, cap) in enumerate(zip(parts, caps)) if cap is None or part < cap
        ]
        if not open_indices:
            raise ValueError("no capacity left to distribute activity")
        total_weight = sum(weights[i] for i in open_indices)
        pick = rng.random() * total_weight
        index = open_indices[-1]
        for i in open_indices:
            pick -= weights[i]
            if pick <= 0:
                index = i
                break
        room = leftover if caps[index] is None else min(leftover, caps[index] - parts[index])
        take = rng.randint(1, room) if room > 1 else room
        parts[index] += take
        leftover -= take


def split_activity(
    rng: random.Random,
    taxon: Taxon,
    active_commits: int,
    total_activity: int,
    reed_limit: int = DEFAULT_REED_LIMIT,
) -> list[int]:
    """Per-active-commit activity amounts with the taxon's reed shape.

    Returns a list of ``active_commits`` positive ints summing to
    ``total_activity``; reeds (> reed_limit) appear per the taxon's
    published reed statistics.
    """
    a, t = active_commits, total_activity
    cap = reed_limit  # turf commits stay at or below the limit
    if taxon is Taxon.FROZEN:
        if a or t:
            raise ValueError("frozen projects have no activity")
        return []
    if taxon is Taxon.ALMOST_FROZEN:
        return _compose_turf(rng, a, t, cap=min(cap, t))
    if taxon is Taxon.FOCUSED_SHOT_AND_FROZEN:
        # One (sometimes two, rarely three) focused shots carry nearly
        # everything; the remaining commits are single-attribute noise.
        shots = 1
        roll = rng.random()
        if a >= 2 and t >= 2 * (reed_limit + 1) and roll < 0.25:
            shots = 2
        if a >= 3 and t >= 3 * (reed_limit + 1) and roll < 0.05:
            shots = 3
        others = a - shots
        pool = t - others
        shot_parts = [pool // shots] * shots
        shot_parts[0] += pool - sum(shot_parts)
        if shots == 2 and shot_parts[0] > 2:
            swing = rng.randint(0, shot_parts[0] // 3)
            shot_parts[0] -= swing
            shot_parts[1] += swing
        parts = shot_parts + [1] * others
        rng.shuffle(parts)
        return parts
    if taxon is Taxon.MODERATE:
        reeds = 0
        if a > 10 and t > a + reed_limit and rng.random() < 0.25:
            reeds = rng.choice((1, 2)) if t > a + 2 * reed_limit else 1
        turf_count = a - reeds
        reed_parts = [reed_limit + 1] * reeds
        base_turf = turf_count  # 1 each
        leftover = t - sum(reed_parts) - base_turf
        if leftover < 0:  # reeds took too much; fall back to all-turf
            return _compose_turf(rng, a, t, cap=cap)
        turf_parts = [1] * turf_count
        # Reeds in Moderate stay modest (the taxon lacks big spikes).
        caps: list[int | None] = [reed_limit + 6] * reeds + [cap] * turf_count
        parts = reed_parts + turf_parts
        try:
            _distribute(rng, parts, caps, leftover)
        except ValueError:
            return _compose_turf(rng, a, t, cap=cap)
        rng.shuffle(parts)
        return parts
    if taxon is Taxon.FOCUSED_SHOT_AND_LOW:
        reeds = 2 if rng.random() < 0.4 else 1
        if t < (reed_limit + 1) * reeds + (a - reeds):
            reeds = 1
        turf_count = a - reeds
        parts = [reed_limit + 1] * reeds + [1] * turf_count
        caps = [None] * reeds + [cap] * turf_count
        bias = [6.0] * reeds + [1.0] * turf_count
        _distribute(rng, parts, caps, leftover=t - sum(parts), bias=bias)
        rng.shuffle(parts)
        return parts
    if taxon is Taxon.ACTIVE:
        reeds = round(a * rng.uniform(0.15, 0.35))
        # Active projects with a heartbeat in the FS&Low range (4-10
        # active commits) must carry 3+ reeds, or the classification
        # tree would route them to FS&Low.
        min_reeds = 3 if a <= 10 else 1
        reeds = max(min_reeds, min(reeds, 31, a))
        while reeds > min_reeds and (reed_limit + 1) * reeds + (a - reeds) > t:
            reeds -= 1
        turf_count = a - reeds
        parts = [reed_limit + 1] * reeds + [1] * turf_count
        caps = [None] * reeds + [cap] * turf_count
        bias = [4.0] * reeds + [1.0] * turf_count
        leftover = t - sum(parts)
        if leftover < 0:
            raise ValueError(f"active project infeasible: a={a}, t={t}")
        _distribute(rng, parts, caps, leftover, bias=bias)
        rng.shuffle(parts)
        return parts
    raise ValueError(f"cannot split activity for {taxon}")


def _sample_targets(
    rng: random.Random, archetype: TaxonArchetype, reed_limit: int, u: float | None = None
) -> tuple[int, int]:
    """Sample (active_commits, total_activity) comonotonically.

    A shared uniform draw correlates the two measures (big projects are
    big in both), which is what the Fig 10 scatter exhibits; jitter
    keeps the relation noisy rather than deterministic.  Callers that
    generate a whole taxon population pass stratified ``u`` values so
    the sample quartiles track the published calibration anchors even
    for small populations.
    """
    if u is None:
        u = rng.random()
    active = archetype.active_commits.at_int(u, jitter=0.12, rng=rng)
    activity = archetype.total_activity.at_int(u, jitter=0.12, rng=rng)
    taxon = archetype.taxon
    if taxon is Taxon.FROZEN:
        return 0, 0
    activity = max(activity, active)  # every active commit moves >= 1 attribute
    if taxon is Taxon.ALMOST_FROZEN:
        activity = min(activity, 10)
        active = min(active, activity)
    elif taxon is Taxon.FOCUSED_SHOT_AND_FROZEN:
        activity = max(activity, 11)
    elif taxon is Taxon.MODERATE:
        activity = min(max(activity, active), 88)
    elif taxon is Taxon.FOCUSED_SHOT_AND_LOW:
        activity = max(activity, (reed_limit + 1) + (active - 1))
    elif taxon is Taxon.ACTIVE:
        # > 90 attributes total, and room for at least 3 reeds when the
        # heartbeat is low enough to collide with FS&Low (see
        # split_activity).
        min_reeds = 3 if active <= 10 else 1
        activity = max(activity, 91, (reed_limit + 1) * min_reeds + (active - min_reeds))
    return active, activity


_DDL_PATHS = (
    "schema.sql",
    "db/schema.sql",
    "sql/install.sql",
    "database/structure.sql",
    "db/mysql.sql",
    "setup/tables.sql",
)

_DOMAINS = (
    "Content Management System",
    "IoT Management",
    "Task Management",
    "Web Services",
    "Messaging Platform",
    "Scientific Data Management",
    "Web Online Store",
    "Online Charging System",
    "Developer Tooling",
    "Monitoring",
)


def plan_project(
    rng: random.Random,
    archetype: TaxonArchetype,
    name: str,
    epoch_start: int = 1_420_070_400,  # 2015-01-01
    reed_limit: int = DEFAULT_REED_LIMIT,
    u: float | None = None,
    pup_u: float | None = None,
    sup_u: float | None = None,
) -> ProjectPlan:
    """Draw one complete project plan from a taxon archetype.

    ``u`` optionally pins the shared calibration uniform (see
    :func:`_sample_targets`); corpus generation passes stratified values.
    """
    active, activity = _sample_targets(rng, archetype, reed_limit, u=u)
    parts = split_activity(rng, archetype.taxon, active, activity, reed_limit)
    non_active = archetype.non_active_commits.sample_int(rng)
    if archetype.taxon is Taxon.FROZEN:
        non_active = max(1, non_active)  # frozen still has >= 2 commits

    if sup_u is None:
        sup_months = archetype.sup_months.sample_int(rng)
    else:
        sup_months = archetype.sup_months.at_int(sup_u)
    if pup_u is None:
        pup_sample = archetype.pup_months.sample_int(rng)
    else:
        pup_sample = archetype.pup_months.at_int(pup_u)
    pup_months = max(pup_sample, sup_months)
    transitions = active + non_active

    # Timeline: the whole project spans pup_months; the DDL file's
    # window (SUP) is placed inside it, biased early (schemata are laid
    # down near project start).
    pup_days = pup_months * _DAYS_PER_MONTH
    sup_days = sup_months * _DAYS_PER_MONTH
    project_start = epoch_start + rng.randint(0, 4 * 365) * _SECONDS_PER_DAY
    slack_days = max(0.0, pup_days - sup_days)
    ddl_offset_days = rng.uniform(0.0, slack_days * 0.35)
    v0_timestamp = project_start + int(ddl_offset_days * _SECONDS_PER_DAY)

    if transitions == 1:
        offsets = [sup_days]
    else:
        offsets = sorted(rng.uniform(0.0, sup_days) for _ in range(transitions - 1))
        offsets.append(sup_days)
    timestamps = []
    previous = v0_timestamp
    for offset in offsets:
        ts = v0_timestamp + int(offset * _SECONDS_PER_DAY)
        ts = max(ts, previous + 60)  # strictly increasing
        timestamps.append(ts)
        previous = ts

    # Interleave active and non-active commits randomly over the slots.
    flags = [True] * active + [False] * non_active
    rng.shuffle(flags)
    part_iter = iter(parts)
    commits = [
        CommitPlan(timestamp=ts, activity=next(part_iter) if is_active else 0)
        for ts, is_active in zip(timestamps, flags)
    ]

    flat_line = rng.random() < archetype.flat_line_share
    insert_budget = 0 if flat_line else archetype.table_insertions.sample_int(rng)
    delete_budget = 0 if flat_line else archetype.table_deletions.sample_int(rng)
    if not flat_line and archetype.taxon is not Taxon.FROZEN:
        if insert_budget == 0 and delete_budget == 0:
            # A project drawn as non-flat must move its table count at
            # least once (a table birth needs >= 2 attributes of budget).
            if activity >= 2:
                insert_budget = 1
            else:
                flat_line = True

    # Most projects grow monotonically (the Sec IV schema-line shapes);
    # the undisciplined minority may shrink or zig-zag.
    growth_discipline = rng.random() < 0.72

    n_commits = transitions + 1
    share = archetype.ddl_commit_share * rng.uniform(0.7, 1.4)
    total_project_commits = max(n_commits + 2, round(n_commits / share))

    return ProjectPlan(
        name=name,
        taxon=archetype.taxon,
        ddl_path=rng.choice(_DDL_PATHS),
        v0_timestamp=v0_timestamp,
        commits=commits,
        total_activity=activity,
        active_commits=active,
        planned_reeds=sum(1 for part in parts if part > reed_limit),
        sup_months=sup_months,
        pup_months=pup_months,
        tables_at_start=archetype.tables_at_start.sample_int(rng),
        insert_budget=insert_budget,
        delete_budget=delete_budget,
        expansion_share=archetype.expansion_share,
        flat_line=flat_line,
        growth_discipline=growth_discipline,
        total_project_commits=total_project_commits,
        project_start=project_start,
        domain=rng.choice(_DOMAINS),
    )
