"""Realize a project plan as actual SQL committed to a repository.

The realizer is the closing of the synthesis loop: each planned commit
budget is spent on concrete schema operations (table births and deaths,
attribute injections/ejections, type and primary-key changes) chosen so
that re-measuring the realized repository with the *real* pipeline
(lex -> parse -> build -> diff) recovers the planned activity exactly.

Exactness rules the op selection:

- all ops within one commit touch pairwise-disjoint attributes, so no
  op masks another in the version diff;
- unit ops only target tables/attributes that already existed before
  the commit (changes inside a table born this commit fold into its
  birth);
- ejections never empty a table, deletions never empty the schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.schema.model import Attribute, Schema, Table
from repro.schema.writer import render_schema
from repro.sqlddl.types import DataType
from repro.synthesis.naming import NameForge
from repro.synthesis.plan import CommitPlan, ProjectPlan
from repro.vcs.repository import Repository

_TYPE_PALETTE: tuple[DataType, ...] = (
    DataType("INT"),
    DataType("BIGINT"),
    DataType("SMALLINT"),
    DataType("VARCHAR", ("255",)),
    DataType("VARCHAR", ("64",)),
    DataType("TEXT"),
    DataType("DATETIME"),
    DataType("DATE"),
    DataType("DECIMAL", ("10", "2")),
    DataType("BOOLEAN"),
    DataType("DOUBLE"),
)

_FILLER_PATHS = (
    "src/app.py",
    "src/models.py",
    "src/views.py",
    "lib/util.js",
    "docs/changelog.md",
    "Makefile",
)


@dataclass
class _MutableTable:
    """Working copy of a table during realization."""

    name: str
    attributes: list[tuple[str, DataType, bool]]  # (name, type, nullable)
    pk: set[str]
    born_at: int = 0  # commit index of the table's birth
    touches: int = 0  # intra-table updates received so far

    def to_table(self) -> Table:
        return Table(
            name=self.name,
            attributes=tuple(
                Attribute(name=n, data_type=t, nullable=nullable)
                for n, t, nullable in self.attributes
            ),
            primary_key=tuple(sorted(self.pk)),
        )

    def attr_names(self) -> set[str]:
        return {n for n, _, _ in self.attributes}


@dataclass
class _WorkingSchema:
    """Mutable schema state plus the non-logical "extras" of the file."""

    tables: dict[str, _MutableTable] = field(default_factory=dict)
    extras: list[str] = field(default_factory=list)
    extras_counter: int = 0
    commit_index: int = 0  # current commit ordinal (for table ages)

    def to_schema(self) -> Schema:
        return Schema(tuple(t.to_table() for t in self.tables.values()))

    def render(self, project: str) -> bytes:
        text = render_schema(self.to_schema(), header=f"Schema of {project}")
        if self.extras:
            text += "\n" + "\n".join(self.extras) + "\n"
        return text.encode("utf-8")


class RealizationError(Exception):
    """A plan could not be realized (should never happen for plans
    produced by :func:`repro.synthesis.plan.plan_project`)."""


def _new_table(forge: NameForge, rng: random.Random, n_attrs: int) -> _MutableTable:
    name = forge.table_name()
    attributes: list[tuple[str, DataType, bool]] = []
    taken: set[str] = set()
    pk: set[str] = set()
    for index in range(n_attrs):
        if index == 0:
            column = "id"
            if column in taken:  # pragma: no cover - fresh table
                column = forge.column_name(taken)
            data_type = DataType("INT")
            pk.add(column)
            nullable = False
        else:
            column = forge.column_name(taken)
            data_type = rng.choice(_TYPE_PALETTE)
            nullable = rng.random() < 0.6
        taken.add(column)
        attributes.append((column, data_type, nullable))
    return _MutableTable(name=name, attributes=attributes, pk=pk)


def _initial_schema(
    forge: NameForge, rng: random.Random, n_tables: int
) -> _WorkingSchema:
    working = _WorkingSchema()
    for _ in range(n_tables):
        table = _new_table(forge, rng, n_attrs=rng.randint(2, 10))
        working.tables[table.name] = table
    return working


def _foreign_key_statement(working: _WorkingSchema, rng: random.Random, n: int) -> str | None:
    """An ALTER ... ADD CONSTRAINT ... FOREIGN KEY between two live tables.

    Foreign keys are sub-logical for the core study (the builder applies
    ADD CONSTRAINT FK as a no-op), so emitting them never perturbs the
    planned activity — but the FK-usage extension can measure them.
    """
    if len(working.tables) < 2:
        return None
    child_name, parent_name = rng.sample(sorted(working.tables), 2)
    child = working.tables[child_name]
    parent = working.tables[parent_name]
    if not parent.pk:
        return None
    column = rng.choice(child.attributes)[0]
    target = sorted(parent.pk)[0]
    return (
        f"ALTER TABLE `{child.name}` ADD CONSTRAINT `fk_{n}` "
        f"FOREIGN KEY (`{column}`) REFERENCES `{parent.name}` (`{target}`);"
    )


def _mutate_extras(working: _WorkingSchema, rng: random.Random) -> None:
    """A non-active commit: touch the file without touching the schema."""
    working.extras_counter += 1
    n = working.extras_counter
    choice = rng.random()
    if choice < 0.35 or not working.tables:
        working.extras.append(f"-- maintenance note #{n}: tuning pass")
    elif choice < 0.6:
        table = rng.choice(sorted(working.tables))
        working.extras.append(f"INSERT INTO `{table}` VALUES ({n}); -- seed row")
    elif choice < 0.85:
        table = rng.choice(sorted(working.tables))
        columns = working.tables[table].attributes
        column = rng.choice(columns)[0]
        working.extras.append(f"CREATE INDEX `idx_{n}` ON `{table}` (`{column}`);")
    else:
        statement = _foreign_key_statement(working, rng, n)
        if statement is None:
            working.extras.append(f"-- maintenance note #{n}: tuning pass")
        else:
            working.extras.append(statement)


@dataclass
class _CommitBudget:
    """Mutable budget tracking for one active commit."""

    remaining: int
    touched: set[tuple[str, str]] = field(default_factory=set)  # (table, attr)
    born_tables: set[str] = field(default_factory=set)
    dead_tables: set[str] = field(default_factory=set)

    def touch(self, table: str, attr: str) -> None:
        self.touched.add((table, attr))

    def is_touched(self, table: str, attr: str) -> bool:
        return (table, attr) in self.touched


def _insert_tables(
    working: _WorkingSchema,
    budget: _CommitBudget,
    plan_state: dict[str, int],
    forge: NameForge,
    rng: random.Random,
) -> None:
    first = True
    while (
        plan_state["inserts"] > 0
        and budget.remaining >= 1
        and (first or rng.random() < 0.75)
    ):
        first = False
        # Single-column tables are legitimate SQL (tag lists, migration
        # markers); they let even one-attribute budgets move the line.
        size = rng.randint(1, min(7, budget.remaining)) if budget.remaining < 4 else rng.randint(2, min(7, budget.remaining))
        table = _new_table(forge, rng, n_attrs=size)
        table.born_at = working.commit_index
        working.tables[table.name] = table
        budget.born_tables.add(table.name)
        budget.remaining -= size
        plan_state["inserts"] -= 1


def _delete_tables(
    working: _WorkingSchema,
    budget: _CommitBudget,
    plan_state: dict[str, int],
    rng: random.Random,
    growth_discipline: bool = False,
) -> None:
    while plan_state["deletes"] > 0 and budget.remaining >= 1 and rng.random() < 0.6:
        if growth_discipline and len(budget.dead_tables) >= len(budget.born_tables):
            # Disciplined projects only retire tables in commits that
            # grow at least as much: the schema line never dips.
            break
        candidates = [
            t
            for t in working.tables.values()
            if t.name not in budget.born_tables
            and len(t.attributes) <= budget.remaining
            and not any(budget.is_touched(t.name, a) for a in t.attr_names())
        ]
        if len(working.tables) <= 1 or not candidates:
            break
        # Electrolysis bias: deletions strike the quiet and the young
        # far more often than old, much-updated tables.
        ranked = sorted(candidates, key=lambda t: (t.touches, -t.born_at, t.name))
        pool = ranked[: max(1, (len(ranked) + 1) // 3)]
        victim = rng.choice(pool)
        budget.remaining -= len(victim.attributes)
        budget.dead_tables.add(victim.name)
        del working.tables[victim.name]
        # Keep the non-logical extras consistent: seed rows, indexes and
        # foreign keys of a dropped table leave the file with it.
        needle = f"`{victim.name}`"
        working.extras = [line for line in working.extras if needle not in line]
        plan_state["deletes"] -= 1


def _eligible_tables(working: _WorkingSchema, budget: _CommitBudget) -> list[_MutableTable]:
    """Tables that existed before this commit and still exist."""
    return [
        t
        for name, t in sorted(working.tables.items())
        if name not in budget.born_tables
    ]


def _op_inject(
    working: _WorkingSchema, budget: _CommitBudget, forge: NameForge, rng: random.Random
) -> bool:
    tables = _eligible_tables(working, budget)
    if not tables:
        return False
    table = rng.choice(tables)
    # Avoid resurrecting a name ejected in this same commit: the diff
    # would fold eject+inject of an identical attribute into nothing.
    taken = table.attr_names() | {
        attr for table_name, attr in budget.touched if table_name == table.name
    }
    column = forge.column_name(taken)
    table.attributes.append((column, rng.choice(_TYPE_PALETTE), rng.random() < 0.6))
    table.touches += 1
    budget.touch(table.name, column)
    budget.remaining -= 1
    return True


def _op_eject(working: _WorkingSchema, budget: _CommitBudget, rng: random.Random) -> bool:
    for table in rng.sample(
        _eligible_tables(working, budget), k=len(_eligible_tables(working, budget))
    ):
        removable = [
            (n, t, nullable)
            for n, t, nullable in table.attributes
            if n not in table.pk and not budget.is_touched(table.name, n)
        ]
        if removable and len(table.attributes) >= 2:
            victim = rng.choice(removable)
            table.attributes.remove(victim)
            table.touches += 1
            budget.touch(table.name, victim[0])
            budget.remaining -= 1
            return True
    return False


def _op_type_change(
    working: _WorkingSchema, budget: _CommitBudget, rng: random.Random
) -> bool:
    tables = _eligible_tables(working, budget)
    for table in rng.sample(tables, k=len(tables)):
        indices = [
            i
            for i, (n, _, _) in enumerate(table.attributes)
            if not budget.is_touched(table.name, n)
        ]
        if not indices:
            continue
        index = rng.choice(indices)
        name, old_type, nullable = table.attributes[index]
        replacements = [t for t in _TYPE_PALETTE if t != old_type]
        table.attributes[index] = (name, rng.choice(replacements), nullable)
        table.touches += 1
        budget.touch(table.name, name)
        budget.remaining -= 1
        return True
    return False


def _op_pk_change(
    working: _WorkingSchema, budget: _CommitBudget, rng: random.Random
) -> bool:
    tables = _eligible_tables(working, budget)
    for table in rng.sample(tables, k=len(tables)):
        # Prefer widening the key: add a surviving non-pk attribute.
        additions = [
            n
            for n, _, _ in table.attributes
            if n not in table.pk and not budget.is_touched(table.name, n)
        ]
        if additions:
            chosen = rng.choice(additions)
            table.pk.add(chosen)
            table.touches += 1
            budget.touch(table.name, chosen)
            budget.remaining -= 1
            return True
        removals = [
            n for n in sorted(table.pk) if not budget.is_touched(table.name, n)
        ]
        if len(removals) >= 2:
            chosen = rng.choice(removals)
            table.pk.discard(chosen)
            table.touches += 1
            budget.touch(table.name, chosen)
            budget.remaining -= 1
            return True
    return False


def _apply_active_commit(
    working: _WorkingSchema,
    activity: int,
    plan: ProjectPlan,
    plan_state: dict[str, int],
    forge: NameForge,
    rng: random.Random,
) -> None:
    """Spend *activity* attribute-units of change on the working schema."""
    budget = _CommitBudget(remaining=activity)
    if not plan.flat_line:
        _insert_tables(working, budget, plan_state, forge, rng)
        _delete_tables(working, budget, plan_state, rng, plan.growth_discipline)
    while budget.remaining > 0:
        roll = rng.random()
        done = False
        if roll < plan.expansion_share:
            done = _op_inject(working, budget, forge, rng)
        elif roll < plan.expansion_share + 0.15:
            done = _op_eject(working, budget, rng)
        elif roll < plan.expansion_share + 0.28:
            done = _op_pk_change(working, budget, rng)
        else:
            done = _op_type_change(working, budget, rng)
        if not done:
            # Fallbacks, in order of least structural impact.
            done = (
                _op_type_change(working, budget, rng)
                or _op_inject(working, budget, forge, rng)
                or _op_pk_change(working, budget, rng)
                or _op_eject(working, budget, rng)
            )
        if not done:
            # Truly stuck (e.g. every pre-existing table gone): give the
            # schema a fresh table carrying the rest of the budget.
            size = budget.remaining
            table = _new_table(forge, rng, n_attrs=min(size, 8))
            table.born_at = working.commit_index
            working.tables[table.name] = table
            budget.born_tables.add(table.name)
            budget.remaining -= len(table.attributes)


def realize_project(
    plan: ProjectPlan, rng: random.Random
) -> tuple[Repository, str]:
    """Materialize *plan* into a repository; returns (repo, ddl path).

    The repository contains the planned DDL commits plus filler commits
    on other paths so that total commit count and project duration match
    the plan; a fraction of filler work happens on merged side branches,
    exercising the non-linear-history handling of the VCS layer.
    """
    repo = Repository(plan.name)
    forge = NameForge(rng)
    working = _initial_schema(forge, rng, plan.tables_at_start)
    plan_state = {"inserts": plan.insert_budget, "deletes": plan.delete_budget}

    # Roughly half the projects declare referential integrity from day
    # one; the rest never do — the "lack of integrity constraints in
    # several places" the related work reports.
    if len(working.tables) >= 2 and rng.random() < 0.45:
        for _ in range(rng.randint(1, min(3, len(working.tables) - 1))):
            working.extras_counter += 1
            statement = _foreign_key_statement(working, rng, working.extras_counter)
            if statement is not None:
                working.extras.append(statement)

    # Interleave filler commits with DDL commits on the global timeline.
    filler_total = max(0, plan.total_project_commits - plan.n_commits)
    pup_seconds = int(plan.pup_months * 30.4375 * 86_400)
    filler_times = sorted(
        plan.project_start + int(rng.random() * pup_seconds) for _ in range(filler_total)
    )
    ddl_events: list[tuple[int, CommitPlan | None]] = [(plan.v0_timestamp, None)]
    ddl_events.extend((c.timestamp, c) for c in plan.commits)
    events: list[tuple[int, str, CommitPlan | None]] = [
        (ts, "ddl", c) for ts, c in ddl_events
    ] + [(ts, "filler", None) for ts in filler_times]
    events.sort(key=lambda e: (e[0], e[1]))

    authors = [f"dev{i}" for i in range(1, rng.randint(3, 8))]
    filler_index = 0
    last_ts = 0
    skip_fillers = 0
    for ts, kind, commit_plan in events:
        ts = max(ts, last_ts + 1)
        last_ts = ts
        author = rng.choice(authors)
        if kind == "filler":
            if skip_fillers:
                skip_fillers -= 1
                continue
            filler_index += 1
            path = _FILLER_PATHS[filler_index % len(_FILLER_PATHS)]
            content = f"// revision {filler_index}\n".encode()
            if repo.head() is not None and rng.random() < 0.08:
                # Non-linear history: do the work on a side branch and
                # merge it back (the merge commit consumes one future
                # filler slot so totals stay exact).
                branch_name = f"feature-{filler_index}"
                repo.branch(branch_name)
                repo.commit(
                    {path: content},
                    author=author,
                    timestamp=ts,
                    message=f"work on {path} (branch)",
                    branch=branch_name,
                )
                repo.merge(branch_name, author=author, timestamp=ts + 30)
                last_ts = ts + 30
                skip_fillers = 1
            else:
                repo.commit(
                    {path: content},
                    author=author,
                    timestamp=ts,
                    message=f"work on {path}",
                )
            continue
        if commit_plan is None:  # V0
            repo.commit(
                {plan.ddl_path: working.render(plan.name)},
                author=author,
                timestamp=ts,
                message="initial database schema",
            )
            continue
        if commit_plan.is_active:
            working.commit_index += 1
            _apply_active_commit(
                working, commit_plan.activity, plan, plan_state, forge, rng
            )
            message = f"schema update ({commit_plan.activity} attributes)"
        else:
            _mutate_extras(working, rng)
            message = "non-logical schema file touch"
        repo.commit(
            {plan.ddl_path: working.render(plan.name)},
            author=author,
            timestamp=ts,
            message=message,
        )
    return repo, plan.ddl_path
