"""Build the whole synthetic corpus: the Schema_Evo_2019 stand-in.

The corpus reproduces every population of the paper's funnel:

- per-taxon studied projects (195 at scale 1.0, split 34/65/25/29/20/22),
- 132 rigid single-version projects,
- 14 projects whose history extraction yields zero versions,
- 24 projects whose ``.sql`` file never contains CREATE TABLE,
- join-level noise (forks, zero-star, single-contributor, not monitored
  by Libraries.io) and path-level noise (incremental scripts, vendor x
  language products, file-per-table layouts) that the pipeline filters
  out before cloning.

``build_corpus(CorpusSpec(seed=2019))`` is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.taxa import Taxon
from repro.mining.funnel import FunnelReport, run_funnel
from repro.mining.github_activity import GithubActivityDataset, SqlFileRecord
from repro.mining.librariesio import LibrariesIoDataset, LibrariesIoRecord
from repro.mining.selection import SelectionCriteria
from repro.synthesis.archetypes import (
    ARCHETYPES,
    HISTORY_LESS_POPULATION,
    NO_CREATE_POPULATION,
    ZERO_VERSION_POPULATION,
    TaxonArchetype,
)
from repro.synthesis.naming import NameForge
from repro.synthesis.plan import ProjectPlan, plan_project
from repro.synthesis.realizer import realize_project
from repro.vcs.repository import Repository

_SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class CorpusSpec:
    """Knobs of the synthetic corpus."""

    seed: int = 2019
    scale: float = 1.0  # scales every population (use < 1 in fast tests)
    history_less: int = HISTORY_LESS_POPULATION
    zero_version: int = ZERO_VERSION_POPULATION
    no_create: int = NO_CREATE_POPULATION
    join_rejected: int = 90  # forks / 0 stars / 1 contributor
    not_in_libio: int = 300  # in the SQL-Collection but unmonitored
    path_omitted: int = 24  # incremental / file-per-table / vendor x lang
    epoch_start: int = 1_420_070_400  # 2015-01-01
    #: When set, pad the SQL-Collection with metadata-only repositories
    #: until it holds this many (the paper queried 133,029); the extras
    #: never pass the Libraries.io join, so the rest of the funnel is
    #: unaffected.
    sql_collection_total: int | None = None

    def scaled(self, population: int) -> int:
        return max(1, round(population * self.scale))


@dataclass
class SyntheticCorpus:
    """The built corpus: datasets, repositories, and ground truth."""

    spec: CorpusSpec
    activity: GithubActivityDataset
    lib_io: LibrariesIoDataset
    repos: dict[str, Repository | None]
    ddl_paths: dict[str, str]
    plans: dict[str, ProjectPlan]
    expected_taxa: dict[str, Taxon]

    def provider(self, repo_name: str) -> Repository | None:
        """The clone step: returns None for repos gone from GitHub."""
        return self.repos.get(repo_name)

    def run_funnel(
        self,
        jobs: int = 1,
        cache_dir: str | None = None,
        cache=None,
        **kwargs,
    ) -> FunnelReport:
        """Run the full mining funnel over this corpus.

        ``jobs``, ``cache_dir`` and ``cache`` forward to the staged
        measurement pipeline (see :mod:`repro.pipeline`); any other
        keyword reaches :func:`repro.mining.funnel.run_funnel` verbatim.
        """
        return run_funnel(
            self.activity,
            self.lib_io,
            self.provider,
            jobs=jobs,
            cache_dir=cache_dir,
            cache=cache,
            **kwargs,
        )

    @property
    def studied_names(self) -> list[str]:
        return sorted(self.expected_taxa)


def _metadata(
    rng: random.Random,
    name: str,
    domain: str = "",
    is_fork: bool = False,
    stars: int | None = None,
    contributors: int | None = None,
) -> LibrariesIoRecord:
    if stars is None:
        stars = max(1, int(rng.paretovariate(1.2)))
    if contributors is None:
        contributors = rng.randint(2, 40)
    return LibrariesIoRecord(
        repo_name=name,
        url=f"https://github.com/{name}",
        is_fork=is_fork,
        stars=stars,
        contributors=contributors,
        watchers=stars + rng.randint(0, 50),
        domain=domain,
    )


def _filler_only_repo(rng: random.Random, name: str, epoch: int, commits: int) -> Repository:
    repo = Repository(name)
    ts = epoch + rng.randint(0, 1000) * _SECONDS_PER_DAY
    for index in range(commits):
        ts += rng.randint(3_600, 20 * 86_400)
        repo.commit(
            {f"src/file{index % 4}.py": f"# rev {index}\n".encode()},
            author=f"dev{index % 3}",
            timestamp=ts,
            message=f"revision {index}",
        )
    return repo


def _rigid_repo(
    rng: random.Random, archetype: TaxonArchetype, name: str, epoch: int
) -> tuple[Repository, str]:
    """A history-less project: one DDL commit, plus regular other work."""
    plan = plan_project(rng, archetype, name, epoch_start=epoch)
    plan.commits = []  # drop all transitions: a single schema version
    repo, ddl_path = realize_project(plan, rng)
    return repo, ddl_path


def _no_create_repo(rng: random.Random, name: str, epoch: int) -> tuple[Repository, str]:
    """A project whose .sql file holds seed data, never CREATE TABLE."""
    repo = Repository(name)
    path = "db/seeds.sql"
    ts = epoch + rng.randint(0, 1000) * _SECONDS_PER_DAY
    n_versions = rng.randint(1, 4)
    rows = ["INSERT INTO config VALUES (1, 'installed');"]
    for version in range(n_versions):
        ts += rng.randint(3_600, 40 * 86_400)
        rows.append(f"INSERT INTO config VALUES ({version + 2}, 'step');")
        repo.commit(
            {path: "\n".join(rows).encode()},
            author="dev1",
            timestamp=ts,
            message=f"seed data v{version}",
        )
    for index in range(rng.randint(3, 15)):
        ts += rng.randint(3_600, 20 * 86_400)
        repo.commit(
            {"src/app.py": f"# rev {index}\n".encode()},
            author="dev1",
            timestamp=ts,
            message="app work",
        )
    return repo, path


_OMITTED_LAYOUTS = ("incremental", "file_per_table", "vendor_language")


def _omitted_paths(rng: random.Random, layout: str) -> list[str]:
    if layout == "incremental":
        count = rng.randint(3, 8)
        return [f"db/upgrade_{i}.sql" for i in range(1, count + 1)]
    if layout == "file_per_table":
        count = rng.randint(4, 10)
        return [f"db/tables/table_{i}.sql" for i in range(count)]
    # vendor x language cartesian product
    vendors = ("mysql", "postgres")
    languages = ("en", "fr", "de")
    return [f"install/{lang}/{vendor}.sql" for lang in languages for vendor in vendors]


def build_corpus(spec: CorpusSpec = CorpusSpec()) -> SyntheticCorpus:
    """Generate the full corpus deterministically from ``spec.seed``."""
    rng = random.Random(spec.seed)
    name_forge = NameForge(rng)
    taken: set[str] = set()

    activity = GithubActivityDataset()
    lib_io = LibrariesIoDataset()
    repos: dict[str, Repository | None] = {}
    ddl_paths: dict[str, str] = {}
    plans: dict[str, ProjectPlan] = {}
    expected: dict[str, Taxon] = {}

    def fresh_name() -> str:
        name = name_forge.project_name(taken)
        taken.add(name)
        return name

    def register_files(name: str, paths: list[str]) -> None:
        for path in paths:
            activity.add(SqlFileRecord(repo_name=name, path=path, size=rng.randint(1_000, 80_000)))

    # 1. The studied per-taxon projects.  The calibration uniform is
    # stratified over each taxon's population so sample quartiles track
    # the published anchors even for the small taxa (n = 20-29).
    for taxon, archetype in ARCHETYPES.items():
        population = spec.scaled(archetype.population)
        strata = [(i + rng.random()) / population for i in range(population)]
        rng.shuffle(strata)
        pup_strata = [(i + rng.random()) / population for i in range(population)]
        rng.shuffle(pup_strata)
        sup_strata = [(i + rng.random()) / population for i in range(population)]
        rng.shuffle(sup_strata)
        for u, pup_u, sup_u in zip(strata, pup_strata, sup_strata):
            name = fresh_name()
            plan = plan_project(
                rng,
                archetype,
                name,
                epoch_start=spec.epoch_start,
                u=u,
                pup_u=pup_u,
                sup_u=sup_u,
            )
            repo, ddl_path = realize_project(plan, rng)
            repos[name] = repo
            ddl_paths[name] = ddl_path
            plans[name] = plan
            expected[name] = taxon
            paths = [ddl_path]
            if ddl_path == "db/mysql.sql" and rng.random() < 0.6:
                # Multi-vendor project: the funnel must pick MySQL.
                paths.append("db/postgres.sql")
            register_files(name, paths)
            lib_io.add(_metadata(rng, name, domain=plan.domain))

    # 2. Rigid (history-less) projects: schema committed once, untouched.
    rigid_archetype = ARCHETYPES[Taxon.FROZEN]
    for _ in range(spec.scaled(spec.history_less)):
        name = fresh_name()
        repo, ddl_path = _rigid_repo(rng, rigid_archetype, name, spec.epoch_start)
        repos[name] = repo
        ddl_paths[name] = ddl_path
        expected[name] = Taxon.HISTORY_LESS
        register_files(name, [ddl_path])
        lib_io.add(_metadata(rng, name))

    # 3. Zero-version extractions: gone from GitHub, or stale paths.
    for index in range(spec.scaled(spec.zero_version)):
        name = fresh_name()
        if index % 2 == 0:
            repos[name] = None  # removed from GitHub since the snapshot
        else:
            repos[name] = _filler_only_repo(rng, name, spec.epoch_start, rng.randint(4, 20))
        register_files(name, ["legacy/schema.sql"])
        lib_io.add(_metadata(rng, name))

    # 4. .sql files without CREATE TABLE (seed data only).
    for _ in range(spec.scaled(spec.no_create)):
        name = fresh_name()
        repo, path = _no_create_repo(rng, name, spec.epoch_start)
        repos[name] = repo
        register_files(name, [path])
        lib_io.add(_metadata(rng, name))

    # 5. Join-level rejects: forks, zero stars, single contributor.
    for index in range(spec.join_rejected):
        name = fresh_name()
        register_files(name, ["schema.sql"])
        mode = index % 3
        lib_io.add(
            _metadata(
                rng,
                name,
                is_fork=(mode == 0),
                stars=0 if mode == 1 else None,
                contributors=1 if mode == 2 else None,
            )
        )

    # 6. SQL-Collection entries Libraries.io never monitored.
    for _ in range(spec.not_in_libio):
        name = fresh_name()
        register_files(name, ["sql/dump.sql"])

    # 7. Path-level omissions: layouts the manual inspection rejected.
    for index in range(spec.path_omitted):
        name = fresh_name()
        layout = _OMITTED_LAYOUTS[index % len(_OMITTED_LAYOUTS)]
        register_files(name, _omitted_paths(rng, layout))
        lib_io.add(_metadata(rng, name))

    if spec.sql_collection_total is not None:
        current = activity.repository_count()
        for index in range(max(0, spec.sql_collection_total - current)):
            filler_name = f"sqlcollection/repo-{index:06d}"
            activity.add(
                SqlFileRecord(repo_name=filler_name, path="sql/dump.sql", size=1_000)
            )

    return SyntheticCorpus(
        spec=spec,
        activity=activity,
        lib_io=lib_io,
        repos=repos,
        ddl_paths=ddl_paths,
        plans=plans,
        expected_taxa=expected,
    )
