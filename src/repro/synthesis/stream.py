"""Streaming, seeded, constant-memory corpus synthesis.

:func:`repro.synthesis.corpus.build_corpus` materializes every
repository of the corpus before the first one is measured — fine at the
paper's ~600-project scale, hopeless at 100k–1M.  This module is the
large-scale producer: :func:`stream_projects` yields one fully-specified
synthetic project at a time, and each project's randomness comes from
its **own** :class:`random.Random` seeded by
``project_seed(corpus_seed, index)`` (a sha256 derivation), so

- memory stays constant in the corpus size (nothing is retained across
  yields),
- any slice of the stream is byte-reproducible *independently* —
  project ``i`` is identical whether generated alone, as part of a
  resumed tail, or inside the full sweep, and
- workers can synthesize disjoint index ranges in parallel without
  sharing RNG state.

Two calibration profiles exist: ``"paper"`` reuses the published
archetypes verbatim (faithful but expensive — an Active project costs
seconds to realize and measure), while ``"light"`` (the default) uses
scaled-down archetypes that preserve each taxon's *classification
signature* (heartbeat, activity, reed structure, duration bands) at
~1/100th the realize+measure cost, which is what makes 100k projects
CI-feasible.  Every light project still travels the full pipeline —
extraction, parsing, diffing, measuring, classification — and lands on
its intended taxon.

:func:`materialize_stream` folds a (small) stream back into a
:class:`~repro.synthesis.corpus.SyntheticCorpus`, which is how the
byte-identity gate proves the streamed and materialized paths produce
stores with equal ``content_hash()``.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.taxa import Taxon
from repro.mining.github_activity import GithubActivityDataset, SqlFileRecord
from repro.mining.librariesio import LibrariesIoDataset, LibrariesIoRecord
from repro.synthesis.archetypes import ARCHETYPES, TaxonArchetype
from repro.synthesis.corpus import SyntheticCorpus
from repro.synthesis.naming import NameForge
from repro.synthesis.plan import ProjectPlan, plan_project
from repro.synthesis.quantiles import FivePoint
from repro.synthesis.realizer import realize_project
from repro.vcs.repository import Repository

#: Calibration profiles selectable via ``StreamSpec.profile``.
PROFILES = ("light", "paper")

#: Scaled-down archetypes for mass synthesis.  Each preserves the
#: taxon's classification signature — heartbeat band, total-activity
#: band, reed structure, duration — while capping the tails that make
#: the paper-faithful archetypes expensive to realize (an Active
#: project can plan 3485 attribute moves; nothing here plans more than
#: 40).  Populations act as mix weights, echoing the paper's skew
#: toward the quiet taxa.
LIGHT_ARCHETYPES: dict[Taxon, TaxonArchetype] = {
    Taxon.FROZEN: TaxonArchetype(
        taxon=Taxon.FROZEN,
        population=4,
        active_commits=FivePoint(0, 0, 0, 0, 0),
        total_activity=FivePoint(0, 0, 0, 0, 0),
        non_active_commits=FivePoint(1, 1, 1, 1, 2),
        sup_months=FivePoint(1, 1, 1, 2, 6),
        pup_months=FivePoint(1, 2, 4, 8, 24),
        tables_at_start=FivePoint(1, 1, 2, 3, 5),
        table_insertions=FivePoint(0, 0, 0, 0, 0),
        table_deletions=FivePoint(0, 0, 0, 0, 0),
        ddl_commit_share=0.3,
        expansion_share=0.0,
        flat_line_share=1.0,
    ),
    Taxon.ALMOST_FROZEN: TaxonArchetype(
        taxon=Taxon.ALMOST_FROZEN,
        population=5,
        active_commits=FivePoint(1, 1, 1, 2, 3),
        total_activity=FivePoint(1, 1, 3, 5, 10),
        non_active_commits=FivePoint(0, 0, 1, 1, 2),
        sup_months=FivePoint(1, 2, 4, 8, 20),
        pup_months=FivePoint(1, 2, 6, 12, 30),
        tables_at_start=FivePoint(1, 1, 2, 3, 6),
        table_insertions=FivePoint(0, 0, 0, 0, 2),
        table_deletions=FivePoint(0, 0, 0, 0, 1),
        ddl_commit_share=0.3,
        expansion_share=0.45,
        flat_line_share=0.75,
    ),
    Taxon.FOCUSED_SHOT_AND_FROZEN: TaxonArchetype(
        taxon=Taxon.FOCUSED_SHOT_AND_FROZEN,
        population=2,
        active_commits=FivePoint(1, 1, 2, 2, 3),
        total_activity=FivePoint(11, 13, 16, 22, 40),
        non_active_commits=FivePoint(0, 0, 1, 1, 2),
        sup_months=FivePoint(1, 1, 2, 6, 18),
        pup_months=FivePoint(1, 2, 8, 14, 30),
        tables_at_start=FivePoint(1, 2, 3, 4, 8),
        table_insertions=FivePoint(0, 1, 1, 2, 4),
        table_deletions=FivePoint(0, 0, 0, 1, 2),
        ddl_commit_share=0.3,
        expansion_share=0.65,
        flat_line_share=0.36,
    ),
    Taxon.MODERATE: TaxonArchetype(
        taxon=Taxon.MODERATE,
        population=2,
        active_commits=FivePoint(4, 4, 5, 6, 8),
        total_activity=FivePoint(11, 13, 18, 26, 40),
        non_active_commits=FivePoint(0, 0, 1, 2, 3),
        sup_months=FivePoint(1, 4, 10, 16, 30),
        pup_months=FivePoint(1, 4, 12, 20, 36),
        tables_at_start=FivePoint(1, 2, 3, 5, 8),
        table_insertions=FivePoint(0, 0, 1, 2, 3),
        table_deletions=FivePoint(0, 0, 0, 1, 2),
        ddl_commit_share=0.3,
        expansion_share=0.65,
        flat_line_share=0.10,
    ),
}


def profile_archetypes(profile: str) -> dict[Taxon, TaxonArchetype]:
    """The archetype mix a profile synthesizes from."""
    if profile == "light":
        return LIGHT_ARCHETYPES
    if profile == "paper":
        return ARCHETYPES
    raise ValueError(f"unknown stream profile {profile!r}; expected one of {PROFILES}")


#: Per-dialect archetype-population multipliers: the calibration layer
#: that tilts a streamed mix toward each ecosystem's observed evolution
#: profile.  PostgreSQL-backed projects skew toward sustained evolution
#: (server-side schemas keep moving), while SQLite corpora skew frozen
#: (embedded schemas ship once and fossilize).  MySQL is the identity —
#: an all-MySQL stream is byte-identical to the pre-dialect stream.
#: Absent taxa multiply by 1.0.
DIALECT_CALIBRATION: dict[str, dict[Taxon, float]] = {
    "mysql": {},
    "postgresql": {
        Taxon.FROZEN: 0.7,
        Taxon.FOCUSED_SHOT_AND_FROZEN: 1.3,
        Taxon.MODERATE: 1.6,
    },
    "sqlite": {
        Taxon.FROZEN: 1.8,
        Taxon.ALMOST_FROZEN: 1.3,
        Taxon.MODERATE: 0.5,
    },
}


@dataclass(frozen=True)
class StreamSpec:
    """Knobs of one streamed corpus.

    Unlike :class:`~repro.synthesis.corpus.CorpusSpec` there are no
    funnel-noise populations: every streamed project is a studied
    candidate.  The stream's identity is ``(seed, profile,
    epoch_start)`` — ``count`` only bounds how much of the (conceptually
    infinite) stream is consumed, so growing a corpus from 10k to 100k
    re-generates byte-identical prefixes.
    """

    seed: int = 2019
    count: int = 1000
    profile: str = "light"
    epoch_start: int = 1_420_070_400  # 2015-01-01
    dialects: tuple[str, ...] = ("mysql",)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        profile_archetypes(self.profile)  # validate eagerly
        if not self.dialects:
            raise ValueError("dialects must name at least one frontend")
        from repro.sqlddl.dialects import canonical_dialect_name

        canonical = tuple(canonical_dialect_name(name) for name in self.dialects)
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"duplicate dialects in {self.dialects!r}")
        object.__setattr__(self, "dialects", canonical)


@dataclass
class StreamedProject:
    """One fully-specified synthetic project, independent of its peers."""

    index: int
    name: str
    repo: Repository
    ddl_path: str
    plan: ProjectPlan
    expected_taxon: Taxon
    metadata: LibrariesIoRecord
    sql_file: SqlFileRecord
    dialect: str = "mysql"


def project_seed(corpus_seed: int, index: int) -> int:
    """The per-project RNG seed: a sha256 derivation of (seed, index).

    Hash-derived (rather than ``seed + index``) so neighbouring corpus
    seeds produce statistically unrelated streams, and stable across
    Python versions and platforms.
    """
    digest = hashlib.sha256(f"repro-stream|{corpus_seed}|{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _pick_archetype(
    rng: random.Random,
    archetypes: dict[Taxon, TaxonArchetype],
    dialect: str = "mysql",
) -> TaxonArchetype:
    """Population-weighted archetype choice (insertion order is fixed).

    ``dialect`` applies the :data:`DIALECT_CALIBRATION` multipliers; the
    MySQL calibration is the identity, so the default draw — weights and
    RNG consumption alike — matches the pre-dialect stream exactly.
    """
    calibration = DIALECT_CALIBRATION.get(dialect, {})
    choices = list(archetypes.values())
    weights = [
        archetype.population * calibration.get(archetype.taxon, 1.0)
        for archetype in choices
    ]
    return rng.choices(choices, weights=weights, k=1)[0]


def synthesize_project(spec: StreamSpec, index: int) -> StreamedProject:
    """Generate project *index* of the stream, from scratch.

    Everything — archetype choice, name, plan, DDL text, metadata —
    draws from one fresh ``Random(project_seed(spec.seed, index))``, so
    the result depends only on ``(spec, index)``.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    rng = random.Random(project_seed(spec.seed, index))
    # The dialect draw happens ONLY for a genuine mix: a single-dialect
    # stream must not consume RNG state the historical stream didn't,
    # or every downstream draw (and the byte-identity gate) would move.
    if len(spec.dialects) > 1:
        dialect = rng.choice(list(spec.dialects))
    else:
        dialect = spec.dialects[0]
    archetype = _pick_archetype(rng, profile_archetypes(spec.profile), dialect)
    forge = NameForge(rng)
    # The forge guarantees uniqueness only within one RNG; the index
    # suffix makes names globally unique across the whole stream.
    name = f"{forge.project_name(set())}-{index}"
    plan = plan_project(rng, archetype, name, epoch_start=spec.epoch_start)
    repo, ddl_path = realize_project(plan, rng)
    stars = max(1, int(rng.paretovariate(1.2)))
    metadata = LibrariesIoRecord(
        repo_name=name,
        url=f"https://github.com/{name}",
        is_fork=False,
        stars=stars,
        contributors=rng.randint(2, 40),
        watchers=stars + rng.randint(0, 50),
        domain=plan.domain,
    )
    sql_file = SqlFileRecord(
        repo_name=name, path=ddl_path, size=rng.randint(1_000, 80_000)
    )
    return StreamedProject(
        index=index,
        name=name,
        repo=repo,
        ddl_path=ddl_path,
        plan=plan,
        expected_taxon=archetype.taxon,
        metadata=metadata,
        sql_file=sql_file,
        dialect=dialect,
    )


def stream_projects(
    spec: StreamSpec, start: int = 0, stop: int | None = None
) -> Iterator[StreamedProject]:
    """Yield projects ``start .. stop`` (default ``spec.count``) one at a
    time, holding only the current project in memory."""
    if stop is None:
        stop = spec.count
    for index in range(start, stop):
        yield synthesize_project(spec, index)


def materialize_stream(spec: StreamSpec) -> SyntheticCorpus:
    """Collect the whole stream into a :class:`SyntheticCorpus`.

    Only sensible at small counts (it holds every repository in memory
    — exactly what streaming exists to avoid); used by the
    byte-identity gate and anywhere the in-memory funnel API is
    convenient.
    """
    activity = GithubActivityDataset()
    lib_io = LibrariesIoDataset()
    repos: dict[str, Repository | None] = {}
    ddl_paths: dict[str, str] = {}
    plans: dict[str, ProjectPlan] = {}
    expected: dict[str, Taxon] = {}
    for project in stream_projects(spec):
        activity.add(project.sql_file)
        lib_io.add(project.metadata)
        repos[project.name] = project.repo
        ddl_paths[project.name] = project.ddl_path
        plans[project.name] = project.plan
        expected[project.name] = project.expected_taxon
    return SyntheticCorpus(
        spec=spec,  # type: ignore[arg-type]  # duck-typed: carries .seed
        activity=activity,
        lib_io=lib_io,
        repos=repos,
        ddl_paths=ddl_paths,
        plans=plans,
        expected_taxa=expected,
    )
