"""Taxon-calibrated synthetic corpus generation.

The paper's raw material — 327 cloned GitHub repositories — is not
available offline, so this subpackage builds the closest synthetic
equivalent that exercises the same code paths: for every taxon it
samples target measurements from distributions calibrated to the
published per-taxon statistics (Fig 4 / Fig 12), *realizes* them as
actual MySQL DDL text committed into a :class:`~repro.vcs.Repository`,
and wraps everything with the metadata rows the mining funnel consumes.

Everything flows from one seeded ``random.Random``: ``build_corpus``
with the same seed is byte-stable.
"""

from repro.synthesis.quantiles import FivePoint
from repro.synthesis.archetypes import ARCHETYPES, TaxonArchetype, archetype_of
from repro.synthesis.naming import NameForge
from repro.synthesis.plan import CommitPlan, ProjectPlan, plan_project
from repro.synthesis.realizer import realize_project
from repro.synthesis.corpus import SyntheticCorpus, build_corpus, CorpusSpec

__all__ = [
    "ARCHETYPES",
    "CommitPlan",
    "CorpusSpec",
    "FivePoint",
    "NameForge",
    "ProjectPlan",
    "SyntheticCorpus",
    "TaxonArchetype",
    "archetype_of",
    "build_corpus",
    "plan_project",
    "realize_project",
]
