"""Five-point quantile distributions for calibrated sampling.

The paper publishes per-taxon five-number summaries (min, Q1, Q2, Q3,
max — Fig 12) and min/med/max/avg tables (Fig 4).  :class:`FivePoint`
turns such a summary into a samplable distribution by treating the five
points as the 0/25/50/75/100% quantiles of a piecewise-linear CDF and
inverse-transform sampling from it.  Sampling a FivePoint therefore
reproduces the published quartiles *by construction* as the sample
grows — which is exactly the calibration contract of the corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_QUANTILE_KNOTS = (0.0, 0.25, 0.50, 0.75, 1.0)


@dataclass(frozen=True, slots=True)
class FivePoint:
    """A distribution defined by its five-number summary."""

    minimum: float
    q1: float
    q2: float
    q3: float
    maximum: float

    def __post_init__(self) -> None:
        points = (self.minimum, self.q1, self.q2, self.q3, self.maximum)
        for lower, upper in zip(points, points[1:]):
            if upper < lower:
                raise ValueError(f"five-point summary must be non-decreasing, got {points}")

    @property
    def points(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.q2, self.q3, self.maximum)

    def inverse_cdf(self, u: float) -> float:
        """Value at cumulative probability *u* (piecewise-linear)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        points = self.points
        for index in range(4):
            low, high = _QUANTILE_KNOTS[index], _QUANTILE_KNOTS[index + 1]
            if u <= high:
                fraction = (u - low) / (high - low)
                return points[index] + fraction * (points[index + 1] - points[index])
        return self.maximum  # pragma: no cover - loop always returns

    def sample(self, rng: random.Random) -> float:
        """Draw one value via inverse-transform sampling."""
        return self.inverse_cdf(rng.random())

    def sample_int(self, rng: random.Random) -> int:
        """Draw one integer value (rounded, clamped to [min, max])."""
        value = round(self.sample(rng))
        return int(min(max(value, self.minimum), self.maximum))

    def at(self, u: float, jitter: float = 0.0, rng: random.Random | None = None) -> float:
        """Value at *u* with optional uniform jitter on u (comonotone draws).

        Used to sample correlated measures (e.g. a project's activity
        and active commits) from one shared uniform: big projects are
        big in both dimensions, which is what Fig 10's diagonal shows.
        """
        if jitter and rng is not None:
            u = u + rng.uniform(-jitter, jitter)
        u = min(1.0, max(0.0, u))
        return self.inverse_cdf(u)

    def at_int(self, u: float, jitter: float = 0.0, rng: random.Random | None = None) -> int:
        value = round(self.at(u, jitter, rng))
        return int(min(max(value, self.minimum), self.maximum))
