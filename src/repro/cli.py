"""Command line interface: ``python -m repro <command>``.

Commands
--------
``funnel``      run the collection funnel on a synthetic corpus and
                print the stage counts (E1);
``report``      run every experiment and print the full figure/table
                bundle;
``classify``    parse one or more .sql files given in time order as the
                versions of a schema history, measure them and print
                the taxon (the "bring your own history" entry point);
``project``     show one synthetic project's charts (Fig 2 style);
``export``      run the study and write projects.csv / transitions.csv /
                funnel.json / taxa.json / fig4.json to a directory —
                or, with ``--from-store DB``, re-export the same
                artifacts from an ingested corpus store without
                re-running the funnel;
``ingest``      run the funnel and persist the measured corpus into a
                sqlite corpus store (incremental: an unchanged corpus
                re-measures zero projects); ``--shards K`` partitions
                the store across K sqlite files by project-name hash;
``serve``       serve an ingested store as a read-only JSON HTTP API
                (versioned under /v1: projects, heartbeat, taxa, stats,
                failures, metrics) with ETag revalidation, gzip,
                request timeouts and circuit-breaker degradation; the
                legacy unversioned routes answer with a Deprecation
                header; ``--response-cache N`` sizes the hot-path
                rendered-response cache (0 disables); ``--workers N``
                pre-forks N shared-nothing SO_REUSEPORT worker
                processes with supervised respawn and aggregated
                cluster metrics;
``loadgen``     replay a seeded, store-derived workload against a
                corpus API (self-hosted against ``--db`` or an external
                ``--url``), closed-loop (``--concurrency``) or
                open-loop (``--rate``, coordinated-omission-corrected
                latencies), and gate the report on a JSON SLO spec
                (``--slo FILE``; violations exit with code 3);
``advise``      run the migration advisor against a stored project: a
                proposed full-schema DDL file in, a versioned up/down
                migration script plus taxon-atypicality findings out —
                the same JSON envelope (and the same persisted advice
                ledger) as ``POST /v1/projects/{id}/advise``;
                ``--key K`` sets the Idempotency-Key (default: derived
                from the body), so re-running replays the stored row.

Every corpus-running command (and ``classify``) shares one option set,
declared once on :class:`RunOptions`: the pipeline knobs ``--jobs N``,
``--executor {auto,serial,thread,process}`` (how those jobs run:
worker processes by default when ``jobs > 1``), ``--cache-dir DIR``
and ``--stats``, the observability knobs
``--trace FILE`` (write the run's span trace as JSONL) and
``--profile`` (wrap the run in ``cProfile``, writing ``.pstats`` next
to the trace), the resilience knobs ``--retries N`` (bounded
per-project retries), ``--deadline SECONDS`` (per-project wall budget),
``--inject-faults RATE`` + ``--fault-seed N`` (seeded, reproducible
chaos), and ``--json`` (machine-readable success output on stdout and,
on failure, the structured error envelope ``{"error": {"code",
"message", "detail"}}`` on stderr with a nonzero exit code — the same
envelope the ``/v1`` HTTP surface answers with).  ``repro --version``
prints the package version.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro import __version__
from repro.core import analyze_corpus, classify
from repro.obs import (
    TraceRecorder,
    install_recorder,
    profile_path_for,
    profiled,
    trace,
    uninstall_recorder,
)
from repro.reporting import ExperimentSuite, funnel_text
from repro.synthesis import CorpusSpec, build_corpus
from repro.viz import heartbeat_chart, heartbeat_series, line_chart, schema_size_series


def _parse_dialects(value: str) -> tuple[str, ...]:
    """Parse a comma-separated ``--dialects`` list into canonical names."""
    from repro.sqlddl.dialects import canonical_dialect_name
    from repro.sqlddl.errors import UnsupportedDialectError

    names: list[str] = []
    for raw in value.split(","):
        raw = raw.strip()
        if not raw:
            continue
        try:
            name = canonical_dialect_name(raw)
        except UnsupportedDialectError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from exc
        if name not in names:
            names.append(name)
    if not names:
        raise argparse.ArgumentTypeError("at least one dialect is required")
    return tuple(names)


@dataclass(frozen=True)
class RunOptions:
    """The shared option set of every corpus-running command.

    One declaration replaces the old per-command ``_corpus_args`` /
    ``_pipeline_args`` wiring: new flags are added here once and every
    subcommand (``funnel``, ``report``, ``classify``, ``project``,
    ``export``, ``ingest``) picks them up uniformly.
    """

    seed: int = 2019
    scale: float = 1.0
    jobs: int = 1
    executor: str = "auto"
    cache_dir: str | None = None
    stats: bool = False
    trace: str | None = None
    profile: bool = False
    json: bool = False
    retries: int = 1
    deadline: float | None = None
    fault_rate: float = 0.0
    fault_seed: int = 2019
    dialects: tuple[str, ...] = ("mysql",)

    def injector(self, sites: tuple[str, ...] = ("parse", "persist")):
        """The seeded chaos injector these options describe (or None)."""
        if self.fault_rate <= 0:
            return None
        from repro.resilience import FaultInjector

        return FaultInjector(seed=self.fault_seed, rate=self.fault_rate, sites=sites)

    def retry_policy(self):
        from repro.resilience import NO_RETRY, RetryPolicy

        if self.retries <= 1:
            return NO_RETRY
        return RetryPolicy(max_attempts=self.retries, base_delay=0.01, max_delay=0.5)

    @classmethod
    def add_to_parser(
        cls, parser: argparse.ArgumentParser, corpus: bool = True
    ) -> None:
        """Declare the shared flags on *parser* (``corpus=False`` skips
        the synthetic-corpus knobs for bring-your-own-history commands)."""
        if corpus:
            parser.add_argument("--seed", type=int, default=2019, help="corpus seed")
            parser.add_argument(
                "--scale", type=float, default=1.0,
                help="population scale factor (1.0 = paper size)",
            )
            parser.add_argument(
                "--dialects", type=_parse_dialects, default=("mysql",),
                metavar="NAMES",
                help="enabled dialect frontends in preference order, comma-"
                     "separated (mysql, postgresql, sqlite); the default"
                     " mysql-only set reproduces the paper's funnel byte"
                     " for byte",
            )
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="measure N projects concurrently (results are identical for any N)",
        )
        parser.add_argument(
            "--executor", default="auto",
            choices=["auto", "serial", "thread", "process"],
            help="execution backend for --jobs: worker processes sidestep the"
                 " GIL (auto = process when jobs > 1); results are identical"
                 " for every backend",
        )
        parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist the parse/diff cache under DIR; re-runs skip all parsing",
        )
        parser.add_argument(
            "--stats", action="store_true",
            help="print pipeline stage timings and cache hit/miss counters",
        )
        parser.add_argument(
            "--trace", default=None, metavar="FILE",
            help="write the run's span trace to FILE as JSONL",
        )
        parser.add_argument(
            "--profile", action="store_true",
            help="profile the run with cProfile; writes .pstats next to the trace",
        )
        parser.add_argument(
            "--json", action="store_true",
            help="machine-readable output: JSON results on stdout, the"
                 " structured error envelope on stderr",
        )
        parser.add_argument(
            "--retries", type=int, default=1, metavar="N",
            help="attempts per project (1 = no retries); failed projects"
                 " re-run with deterministic backoff",
        )
        parser.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget per project; exceeding it records a"
                 " ProjectFailure instead of hanging the run",
        )
        parser.add_argument(
            "--inject-faults", type=float, default=0.0, dest="fault_rate",
            metavar="RATE",
            help="chaos mode: deterministically fail RATE of projects at the"
                 " parse/persist sites (seeded by --fault-seed)",
        )
        parser.add_argument(
            "--fault-seed", type=int, default=2019, metavar="N",
            help="seed of the fault injector; equal seeds inject equal faults",
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "RunOptions":
        """Collect the shared options (absent flags keep their defaults,
        so commands without the full set — ``serve`` — parse too)."""
        return cls(
            **{
                f.name: getattr(args, f.name, f.default)
                for f in fields(cls)
            }
        )


class CliError(RuntimeError):
    """A command failure carrying the structured error envelope.

    ``main`` renders it as ``error: <message>`` on stderr — or, under
    ``--json``, as the same ``{"error": {"code", "message", "detail"}}``
    envelope the ``/v1`` HTTP surface answers with — and exits nonzero.
    """

    def __init__(
        self, code: str, message: str, detail: str | None = None, exit_code: int = 1
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail
        self.exit_code = exit_code

    def envelope(self) -> dict:
        return {
            "error": {"code": self.code, "message": self.message, "detail": self.detail}
        }


def _build(args: argparse.Namespace):
    opts: RunOptions = args.options
    spec = CorpusSpec(seed=opts.seed, scale=opts.scale)
    started = time.time()
    with trace("corpus.build", seed=opts.seed, scale=opts.scale):
        corpus = build_corpus(spec)
    report = corpus.run_funnel(
        jobs=opts.jobs,
        cache_dir=opts.cache_dir,
        retry=opts.retry_policy(),
        project_deadline=opts.deadline,
        injector=opts.injector(),
        executor=opts.executor,
        dialects=opts.dialects,
    )
    elapsed = time.time() - started
    if not opts.json:
        print(
            f"# corpus seed={opts.seed} scale={opts.scale} "
            f"built+mined in {elapsed:.1f}s\n"
        )
    return corpus, report


def _print_stats(args: argparse.Namespace, report) -> None:
    if args.options.stats and report.stats is not None:
        print()
        print(report.stats.summary())


def _cmd_funnel(args: argparse.Namespace) -> int:
    _, report = _build(args)
    if args.options.json:
        payload = {
            "funnel": dict(report.stage_rows()),
            "rigid_share": round(report.rigid_share, 6),
            "failures": [
                failure.payload()
                for failure in sorted(report.failures, key=lambda f: f.project)
            ],
        }
        if args.options.stats and report.stats is not None:
            payload["stats"] = report.stats.payload()
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(funnel_text(report))
    _print_stats(args, report)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.from_store is not None:
        from repro.store import resolve_store

        with resolve_store(args.from_store) as store:
            if store.project_count() == 0:
                raise CliError(
                    "empty_store",
                    f"store {args.from_store} is empty; run `repro ingest` first",
                )
            print(ExperimentSuite.from_store(store).render_all())
        return 0
    _, report = _build(args)
    analysis = analyze_corpus(report.studied + report.rigid)
    print(ExperimentSuite(report, analysis).render_all())
    _print_stats(args, report)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.pipeline import MeasurementPipeline, PipelineConfig

    opts: RunOptions = args.options
    pipeline = MeasurementPipeline(
        provider=lambda _: None,
        config=PipelineConfig(cache_dir=opts.cache_dir, jobs=opts.jobs),
    )
    raw_versions = []
    for index, path in enumerate(args.files):
        with open(path, encoding="utf-8", errors="replace") as handle:
            # File order stands in for time; identical consecutive files
            # hit the schema cache instead of re-parsing.
            raw_versions.append((path, index * 86_400, handle.read()))
    ctx = pipeline.measure_versions(args.name, args.files[0], raw_versions)
    if ctx.failure is not None:
        raise CliError(
            "measurement_failed",
            f"{ctx.failure.stage} stage failed: {ctx.failure.message}",
        )
    metrics = ctx.metrics
    if metrics is None:
        from repro.pipeline import Outcome

        reason = {
            Outcome.ZERO_VERSIONS: "every given file is empty",
            Outcome.NO_CREATE: "no version ever declares a CREATE TABLE",
        }.get(ctx.outcome, "no measurable schema history")
        raise CliError("unmeasurable", reason)
    taxon = classify(metrics)
    print(f"project:        {args.name}")
    print(f"versions:       {metrics.n_commits}")
    print(f"active commits: {metrics.active_commits}")
    print(f"total activity: {metrics.total_activity} attributes")
    print(f"reeds / turf:   {metrics.reeds} / {metrics.turf_commits}")
    print(f"tables:         {metrics.tables_at_start} -> {metrics.tables_at_end}")
    print(f"taxon:          {taxon.value}")
    if opts.stats:
        print()
        print(pipeline.stats.summary())
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    corpus, report = _build(args)
    pool = report.studied
    if args.taxon:
        pool = [p for p in pool if corpus.expected_taxa.get(p.name, None) is not None
                and corpus.expected_taxa[p.name].value == args.taxon]
    if not pool:
        raise CliError(
            "no_such_taxon", f"no project found for taxon {args.taxon!r}"
        )
    project = max(pool, key=lambda p: p.metrics.total_activity)
    print(line_chart(schema_size_series(project.metrics)))
    print()
    print(heartbeat_chart(heartbeat_series(project.metrics)))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io import export_from_store, export_study

    if args.from_store is not None:
        from repro.store import resolve_store

        with resolve_store(args.from_store) as store:
            if store.project_count() == 0:
                raise CliError(
                    "empty_store",
                    f"store {args.from_store} is empty; run `repro ingest` first",
                )
            paths = export_from_store(args.out, store)
        for kind, path in paths.items():
            print(f"wrote {kind:<12} {path}")
        return 0
    _, report = _build(args)
    analysis = analyze_corpus(report.studied + report.rigid)
    paths = export_study(args.out, report, analysis, stats=args.options.stats)
    for kind, path in paths.items():
        print(f"wrote {kind:<12} {path}")
    _print_stats(args, report)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store import ingest_corpus, ingest_stream, resolve_store

    opts: RunOptions = args.options
    started = time.time()
    if args.stream:
        from repro.synthesis.stream import StreamSpec

        spec = StreamSpec(
            seed=opts.seed, count=args.count, profile=args.stream_profile,
            dialects=opts.dialects,
        )
        with resolve_store(args.db, shards=args.shards) as store:
            report = ingest_stream(
                store,
                spec,
                jobs=opts.jobs,
                cache_dir=opts.cache_dir,
                retry=opts.retry_policy(),
                project_deadline=opts.deadline,
                injector=opts.injector(),
                chunk_size=args.batch_size,
                executor=opts.executor,
            )
            if opts.json:
                payload = {
                    "ingest": report.payload(),
                    "store": {
                        "path": args.db,
                        "projects": store.project_count(),
                        "content_hash": store.content_hash(),
                        "shards": getattr(store, "shard_count", 1),
                    },
                }
                if opts.stats and report.stats is not None:
                    payload["stats"] = report.stats.payload()
                print(json.dumps(payload, sort_keys=True))
                return 0
            print(
                f"# stream seed={opts.seed} count={args.count} "
                f"profile={args.stream_profile} ingested in "
                f"{time.time() - started:.1f}s"
            )
            print(report.summary())
            sharded = getattr(store, "shard_count", 1)
            shard_note = f", {sharded} shards" if sharded > 1 else ""
            print(f"store: {args.db} ({store.project_count()} projects{shard_note}, "
                  f"content hash {store.content_hash()[:16]})")
        if opts.stats and report.stats is not None:
            print()
            print(report.stats.summary())
        return 0
    spec = CorpusSpec(seed=opts.seed, scale=opts.scale)
    with trace("corpus.build", seed=opts.seed, scale=opts.scale):
        corpus = build_corpus(spec)
    with resolve_store(args.db, shards=args.shards) as store:
        report = ingest_corpus(
            store,
            corpus.activity,
            corpus.lib_io,
            corpus.provider,
            jobs=opts.jobs,
            cache_dir=opts.cache_dir,
            retry=opts.retry_policy(),
            project_deadline=opts.deadline,
            injector=opts.injector(),
            executor=opts.executor,
            dialects=opts.dialects,
        )
        if opts.json:
            payload = {
                "ingest": report.payload(),
                "store": {
                    "path": args.db,
                    "projects": store.project_count(),
                    "content_hash": store.content_hash(),
                    "shards": getattr(store, "shard_count", 1),
                },
            }
            if opts.stats and report.stats is not None:
                payload["stats"] = report.stats.payload()
            print(json.dumps(payload, sort_keys=True))
            return 0
        print(f"# corpus seed={opts.seed} scale={opts.scale} built in {time.time() - started:.1f}s")
        print(report.summary())
        sharded = getattr(store, "shard_count", 1)
        shard_note = f", {sharded} shards" if sharded > 1 else ""
        print(f"store: {args.db} ({store.project_count()} projects{shard_note}, "
              f"content hash {store.content_hash()[:16]})")
    if opts.stats and report.stats is not None:
        print()
        print(report.stats.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_forever
    from repro.store import resolve_store

    timeout = args.timeout if args.timeout and args.timeout > 0 else None
    if args.workers > 1:
        import tempfile

        from repro.serve import ClusterConfig, serve_cluster

        with resolve_store(args.db) as store:
            if store.project_count() == 0:
                raise CliError(
                    "empty_store",
                    f"store {args.db} is empty; run `repro ingest` first",
                )
            projects = store.project_count()
        runtime_dir = args.runtime_dir or tempfile.mkdtemp(prefix="repro-serve-")
        print(
            f"serving {projects} projects from {args.db} "
            f"on http://{args.host}:{args.port} with {args.workers} workers "
            f"(runtime dir {runtime_dir}; Ctrl-C to stop)"
        )
        return serve_cluster(
            ClusterConfig(
                db=args.db,
                host=args.host,
                port=args.port,
                workers=args.workers,
                verbose=not args.quiet,
                request_timeout=timeout,
                response_cache=args.response_cache,
                runtime_dir=runtime_dir,
            )
        )
    with resolve_store(args.db) as store:
        if store.project_count() == 0:
            raise CliError(
                "empty_store",
                f"store {args.db} is empty; run `repro ingest` first",
            )
        print(
            f"serving {store.project_count()} projects from {args.db} "
            f"on http://{args.host}:{args.port} (Ctrl-C to stop)"
        )
        serve_forever(
            store,
            host=args.host,
            port=args.port,
            verbose=not args.quiet,
            request_timeout=timeout,
            response_cache=args.response_cache,
        )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import LoadConfig, append_trajectory, load_slo, run_load
    from repro.store import resolve_store

    opts: RunOptions = args.options
    weights = None
    if args.weight:
        from repro.loadgen import DEFAULT_WEIGHTS

        weights = dict(DEFAULT_WEIGHTS)
        for override in args.weight:
            family, _, value = override.partition("=")
            if not value or not value.isdigit():
                raise CliError(
                    "bad_weight",
                    f"--weight takes FAMILY=N with integer N, got {override!r}",
                )
            weights[family] = int(value)  # unknown families fail model-side
    config = LoadConfig(
        seed=opts.seed,
        requests=args.requests,
        mode="open" if args.rate is not None else "closed",
        concurrency=args.concurrency,
        rate=args.rate if args.rate is not None else 50.0,
        think_time=args.think_time,
        duration=args.duration,
        etag_reuse=args.etag_reuse,
        warmup=not args.no_warmup,
        weights=weights,
    )
    slo = None
    if args.slo is not None:
        try:
            slo = load_slo(args.slo)
        except (OSError, ValueError) as exc:
            raise CliError("bad_slo_spec", f"cannot load SLO spec {args.slo}: {exc}")
    with resolve_store(args.db) as store:
        if store.project_count() == 0:
            raise CliError(
                "empty_store",
                f"store {args.db} is empty; run `repro ingest` first",
            )
        report = run_load(
            store,
            config,
            base_url=args.url,
            slo=slo,
            injector=opts.injector(sites=("request",)),
            response_cache=args.response_cache,
        )
    if args.out is not None:
        append_trajectory(args.out, report)
    if opts.json:
        print(json.dumps(report, sort_keys=True))
    else:
        executed = report["executed"]
        target = (
            f" of target {executed['target_rate']:g}"
            if executed["target_rate"] is not None
            else ""
        )
        print(
            f"# loadgen seed={opts.seed} mode={config.mode} "
            f"plan={report['workload']['digest'][:16]}"
        )
        print(
            f"requests: {executed['requests']} ok, {executed['errors']} errors, "
            f"{executed['degraded']} degraded in {executed['wall_seconds']:.2f}s "
            f"({executed['achieved_rps']:g} req/s{target})"
        )
        print(f"statuses: {report['statuses']}")
        latency = report["overall"].get(
            "corrected_latency_ms", report["overall"]["latency_ms"]
        )
        print(
            f"latency:  p50={latency['p50']}ms p90={latency['p90']}ms "
            f"p99={latency['p99']}ms max={latency['max']}ms"
        )
        if slo is not None:
            for check in report["slo"]["checks"]:
                verdict = "ok" if check["passed"] else "VIOLATED"
                print(
                    f"slo:      {check['name']} observed {check['observed']:g} "
                    f"vs limit {check['limit']:g} [{verdict}]"
                )
    if slo is not None and not report["slo"]["passed"]:
        failed = [c["name"] for c in report["slo"]["checks"] if not c["passed"]]
        raise CliError(
            "slo_violated",
            f"SLO gate failed: {', '.join(failed)}",
            detail=json.dumps(report["slo"]),
            exit_code=3,
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    import hashlib

    from repro.advisor import AdvisorError, advise
    from repro.serve.service import render_body
    from repro.store import AdviceConflict, resolve_store

    opts: RunOptions = args.options
    if args.proposal == "-":
        ddl = sys.stdin.read()
    else:
        try:
            with open(args.proposal, encoding="utf-8") as handle:
                ddl = handle.read()
        except OSError as exc:
            raise CliError("bad_proposal", f"cannot read {args.proposal}: {exc}")
    with resolve_store(args.db) as store:
        ref = int(args.project) if args.project.isdigit() else args.project
        stored = store.get_project(ref)
        if stored is None:
            raise CliError("unknown_project", f"unknown project: {args.project}")
        history = store.project_history(stored.name)
        if history is None or not history.history.versions:
            raise CliError(
                "no_history",
                f"{stored.name} has no stored schema history to advise against",
            )
        # The exact contract of POST /v1/projects/{id}/advise: the key
        # defaults to a body-derived hash, a replay returns the stored
        # bytes, and a key reused with a different body is a conflict.
        body_sha256 = hashlib.sha256(render_body({"ddl": ddl})).hexdigest()
        key = args.key or f"sha256:{body_sha256}"
        existing = store.lookup_advice(stored.name, key)
        if existing is not None and existing.body_sha256 == body_sha256:
            payload = json.loads(existing.response.decode("utf-8"))
            replayed = True
        else:
            try:
                advice = advise(
                    history,
                    ddl,
                    project_id=stored.id,
                    taxon=stored.taxon,
                    heartbeat_rows=store.heartbeat_rows(stored.name) or [],
                )
            except AdvisorError as exc:
                raise CliError("bad_proposal", str(exc))

            def build_response(advice_id: int) -> bytes:
                return render_body(
                    {
                        "advice_id": advice_id,
                        "idempotency_key": key,
                        **advice.payload(),
                    }
                )

            try:
                record, replayed = store.record_advice(
                    project_id=stored.id,
                    project=stored.name,
                    idempotency_key=key,
                    body_sha256=body_sha256,
                    build_response=build_response,
                )
            except AdviceConflict as exc:
                raise CliError("idempotency_conflict", str(exc))
            payload = json.loads(record.response.decode("utf-8"))
    if opts.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    migration = payload["migration"]
    replay_note = " (replayed from the advice ledger)" if replayed else ""
    print(
        f"# advice #{payload['advice_id']} for {payload['project']} "
        f"[{payload['taxon']}]{replay_note}"
    )
    print(
        f"migration v{migration['from_version']} -> v{migration['to_version']} "
        f"({len(migration['operations'])} operation(s), cost {migration['cost']}, "
        f"checksum {migration['checksum']})"
    )
    print(f"-- up\n{migration['up']}")
    print(f"-- down\n{migration['down']}")
    if payload["findings"]:
        print("findings:")
        for finding in payload["findings"]:
            print(f"  [{finding['severity']}] {finding['code']}: "
                  f"{finding['message']}")
    else:
        print("findings: none — the proposal is in profile")
    if payload["atypical"]:
        print("verdict: ATYPICAL for this project's evolution profile")
    else:
        print("verdict: in profile")
    return 0


@contextmanager
def _observed(options: RunOptions, command: str):
    """Arm the run's observability: trace recorder and/or profiler.

    The trace JSONL is written (and announced on stderr) after the
    command returns, so the file always holds the complete span set.
    """
    recorder = TraceRecorder() if options.trace else None
    if recorder is not None:
        install_recorder(recorder)
    profile_path = profile_path_for(options.trace, command) if options.profile else None
    try:
        with profiled(profile_path):
            with trace(f"cli.{command}"):
                yield
    finally:
        if recorder is not None:
            uninstall_recorder()
            recorder.write(options.trace)
            print(
                f"wrote trace {options.trace} ({len(recorder)} spans)",
                file=sys.stderr,
            )
        if profile_path is not None:
            print(f"wrote profile {profile_path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    funnel = sub.add_parser("funnel", help="run the collection funnel")
    RunOptions.add_to_parser(funnel)
    funnel.set_defaults(func=_cmd_funnel)

    report = sub.add_parser("report", help="run every experiment")
    RunOptions.add_to_parser(report)
    report.add_argument(
        "--from-store", default=None, metavar="DB",
        help="render the report from an ingested corpus store instead of re-measuring",
    )
    report.set_defaults(func=_cmd_report)

    classify_cmd = sub.add_parser("classify", help="classify a DDL version history")
    classify_cmd.add_argument("files", nargs="+", help=".sql files, oldest first")
    classify_cmd.add_argument("--name", default="local/project", help="project label")
    RunOptions.add_to_parser(classify_cmd, corpus=False)
    classify_cmd.set_defaults(func=_cmd_classify)

    project = sub.add_parser("project", help="chart one synthetic project")
    RunOptions.add_to_parser(project)
    project.add_argument("--taxon", default="active", help="taxon to pick from")
    project.set_defaults(func=_cmd_project)

    export = sub.add_parser("export", help="export study artifacts (CSV/JSON)")
    RunOptions.add_to_parser(export)
    export.add_argument("--out", default="study-export", help="output directory")
    export.add_argument(
        "--from-store", default=None, metavar="DB",
        help="re-export from an ingested corpus store instead of re-running the funnel",
    )
    export.set_defaults(func=_cmd_export)

    ingest = sub.add_parser(
        "ingest", help="run the funnel and persist the corpus into a sqlite store"
    )
    RunOptions.add_to_parser(ingest)
    ingest.add_argument(
        "--db", default="corpus.db", metavar="PATH", help="corpus store path"
    )
    ingest.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the store across K sqlite shard files (id-hash on"
             " project name); an existing sharded store is autodetected",
    )
    ingest.add_argument(
        "--stream", action="store_true",
        help="stream-synthesize the corpus instead of materializing it:"
             " projects are generated, measured and persisted one batch at"
             " a time with constant memory, and an interrupted run resumes"
             " from its last completed batch",
    )
    ingest.add_argument(
        "--count", type=int, default=1000, metavar="N",
        help="number of projects to stream-synthesize (with --stream)",
    )
    ingest.add_argument(
        "--stream-profile", default="light", choices=["light", "paper"],
        help="calibration profile for --stream: 'light' preserves the"
             " taxon-classification signature at ~1/100th the cost of the"
             " paper-fidelity archetypes",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="projects per streamed batch transaction (default: scales"
             " with --jobs)",
    )
    ingest.set_defaults(func=_cmd_ingest)

    serve = sub.add_parser(
        "serve", help="serve an ingested corpus store as a read-only JSON API"
    )
    serve.add_argument(
        "--db", default="corpus.db", metavar="PATH", help="corpus store path"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port")
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request store deadline before degrading (<= 0 disables)",
    )
    serve.add_argument(
        "--response-cache", type=int, default=256, metavar="N",
        help="rendered-response cache entries for cacheable routes (0 disables)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="on failure, print the structured error envelope on stderr",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="pre-fork N SO_REUSEPORT worker processes (1 = in-process server)",
    )
    serve.add_argument(
        "--runtime-dir", default=None, metavar="DIR",
        help="cluster state directory (supervisor.json, per-worker metrics"
             " relays); defaults to a fresh temp dir",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a seeded workload against a corpus API and gate it on SLOs",
    )
    loadgen.add_argument(
        "--db", default="corpus.db", metavar="PATH",
        help="corpus store the workload model derives from (and, without"
             " --url, the store a server is self-hosted against)",
    )
    loadgen.add_argument(
        "--url", default=None, metavar="URL",
        help="target an already-running server instead of self-hosting one",
    )
    loadgen.add_argument("--seed", type=int, default=2019, help="workload seed")
    loadgen.add_argument(
        "--requests", type=int, default=500, metavar="N",
        help="planned request count (same seed + store = same sequence)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="closed-loop wall cap; the run stops early when it expires",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="open-loop target request rate (switches from closed-loop mode;"
             " latencies are coordinated-omission corrected)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, metavar="N", help="worker threads"
    )
    loadgen.add_argument(
        "--think-time", type=float, default=0.0, metavar="SECONDS",
        help="closed-loop pause between a worker's requests (seeded jitter)",
    )
    loadgen.add_argument(
        "--etag-reuse", type=float, default=0.3, metavar="FRACTION",
        help="share of requests revalidating with If-None-Match",
    )
    loadgen.add_argument(
        "--no-warmup", action="store_true",
        help="skip the unique-path prefetch that makes 304 counts deterministic",
    )
    loadgen.add_argument(
        "--slo", default=None, metavar="FILE",
        help="gate the run on a JSON SLO spec; violations exit with code 3",
    )
    loadgen.add_argument(
        "--out", default=None, metavar="FILE",
        help="append the report to a trajectory JSON file",
    )
    loadgen.add_argument(
        "--response-cache", type=int, default=None, metavar="N",
        help="cache size of the self-hosted server (ignored with --url)",
    )
    loadgen.add_argument(
        "--weight", action="append", default=None, metavar="FAMILY=N",
        help="override one family's weight (repeatable; e.g. --weight"
             " advise=5 opts the seeded write family into the mix)",
    )
    RunOptions.add_to_parser(loadgen, corpus=False)
    loadgen.set_defaults(func=_cmd_loadgen)

    advise = sub.add_parser(
        "advise",
        help="run the migration advisor against a stored project",
    )
    advise.add_argument(
        "proposal", metavar="FILE",
        help="the proposed full schema as DDL text ('-' reads stdin)",
    )
    advise.add_argument(
        "--db", default="corpus.db", metavar="PATH", help="corpus store path"
    )
    advise.add_argument(
        "--project", required=True, metavar="REF",
        help="numeric store id or project name",
    )
    advise.add_argument(
        "--key", default=None, metavar="K",
        help="Idempotency-Key; equal key + equal body replays the stored"
             " advice (default: a key derived from the body hash)",
    )
    RunOptions.add_to_parser(advise, corpus=False)
    advise.set_defaults(func=_cmd_advise)

    args = parser.parse_args(argv)
    args.options = RunOptions.from_args(args)
    try:
        with _observed(args.options, args.command):
            return args.func(args)
    except CliError as exc:
        if args.options.json:
            print(json.dumps(exc.envelope(), sort_keys=True), file=sys.stderr)
        else:
            print(f"error: {exc.message}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
