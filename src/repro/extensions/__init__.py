"""Extensions beyond the paper's core study.

Sec VI lists the open research paths: "test the existence of patterns at
the table level, [and] extract the treatment of constraints (esp.,
foreign keys) in FOSS projects."  Both are implemented here on top of
the core pipeline:

- :mod:`repro.extensions.table_lives` — per-table birth/death/duration/
  activity and the Electrolysis pattern of [14]/[15];
- :mod:`repro.extensions.foreign_keys` — foreign-key usage over schema
  histories, following [12].
"""

from repro.extensions.table_lives import (
    TableLife,
    TableLivesStudy,
    study_table_lives,
)
from repro.extensions.foreign_keys import (
    ForeignKeyProfile,
    foreign_key_profile,
)
from repro.extensions.bursts import Burst, BurstProfile, burst_profile

__all__ = [
    "Burst",
    "BurstProfile",
    "ForeignKeyProfile",
    "TableLife",
    "TableLivesStudy",
    "burst_profile",
    "foreign_key_profile",
    "study_table_lives",
]
