"""Foreign-key usage over schema histories (following [12]).

The core study treats constraints other than primary keys as
sub-logical, but the paper's companion work ([12], also quoted for "the
lack of integrity constraints in several places") and the Sec VI open
paths ask how foreign keys are treated in FOSS schemata.  This module
extracts FK counts per version directly from the parsed statements,
without touching the core schema model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlddl.ast import AlterKind, AlterTable, ConstraintKind, CreateTable, DropTable
from repro.sqlddl.parser import parse_script
from repro.vcs.history import FileVersion


@dataclass(frozen=True)
class ForeignKeyProfile:
    """Foreign-key usage of one project's schema history."""

    project: str
    fk_counts: tuple[int, ...]  # one per version
    tables_counts: tuple[int, ...]  # tables per version, for density

    @property
    def ever_used(self) -> bool:
        return any(count > 0 for count in self.fk_counts)

    @property
    def fk_at_end(self) -> int:
        return self.fk_counts[-1] if self.fk_counts else 0

    @property
    def fk_births(self) -> int:
        """Total FK additions across transitions."""
        return sum(
            max(0, after - before)
            for before, after in zip(self.fk_counts, self.fk_counts[1:])
        )

    @property
    def fk_deaths(self) -> int:
        return sum(
            max(0, before - after)
            for before, after in zip(self.fk_counts, self.fk_counts[1:])
        )

    @property
    def density_at_end(self) -> float:
        """FKs per table in the final version."""
        if not self.tables_counts or self.tables_counts[-1] == 0:
            return 0.0
        return self.fk_at_end / self.tables_counts[-1]


def _count_fks(text: str) -> tuple[int, int]:
    """(foreign keys, tables) declared by one version's script.

    Counts both table-level FK constraints in CREATE TABLE and
    inline/ALTER additions, replaying drops: a dropped table takes its
    FKs with it.
    """
    fks_per_table: dict[str, int] = {}
    for statement in parse_script(text):
        if isinstance(statement, CreateTable):
            count = sum(
                1
                for constraint in statement.constraints
                if constraint.kind is ConstraintKind.FOREIGN_KEY
            )
            fks_per_table[statement.name.lower()] = count
        elif isinstance(statement, AlterTable):
            key = statement.name.lower()
            for action in statement.actions:
                if (
                    action.kind is AlterKind.ADD_CONSTRAINT
                    and action.constraint is not None
                    and action.constraint.kind is ConstraintKind.FOREIGN_KEY
                ):
                    fks_per_table[key] = fks_per_table.get(key, 0) + 1
        elif isinstance(statement, DropTable):
            for name in statement.names:
                fks_per_table.pop(name.lower(), None)
    return sum(fks_per_table.values()), len(fks_per_table)


def foreign_key_profile(project: str, versions: list[FileVersion]) -> ForeignKeyProfile:
    """Profile a project's FK usage across its schema history."""
    fk_counts: list[int] = []
    table_counts: list[int] = []
    for version in versions:
        if version.is_deletion or not version.text.strip():
            continue
        fks, tables = _count_fks(version.text)
        fk_counts.append(fks)
        table_counts.append(tables)
    return ForeignKeyProfile(
        project=project,
        fk_counts=tuple(fk_counts),
        tables_counts=tuple(table_counts),
    )
