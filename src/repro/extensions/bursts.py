"""Bursts and calmness in schema growth (after [13]).

"[Skoulis et al.] shows that schemata grow over time with bursts of
concentrated effort of growth and/or maintenance interrupting longer
periods of calmness."  This module detects those bursts on the monthly
heartbeat of a project and measures how concentrated change is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ProjectMetrics


@dataclass(frozen=True)
class Burst:
    """A maximal run of consecutive active months."""

    start_month: int  # 1-based running month
    end_month: int  # inclusive
    activity: int

    @property
    def length(self) -> int:
        return self.end_month - self.start_month + 1


@dataclass(frozen=True)
class BurstProfile:
    """Burst/calmness structure of one project."""

    project: str
    months_observed: int  # running months from V0 to the last commit
    bursts: tuple[Burst, ...]
    total_activity: int

    @property
    def n_bursts(self) -> int:
        return len(self.bursts)

    @property
    def active_months(self) -> int:
        return sum(burst.length for burst in self.bursts)

    @property
    def calm_months(self) -> int:
        return self.months_observed - self.active_months

    @property
    def calm_share(self) -> float:
        """Fraction of observed months without any logical change."""
        if self.months_observed == 0:
            return 1.0
        return self.calm_months / self.months_observed

    @property
    def peak_burst(self) -> Burst | None:
        if not self.bursts:
            return None
        return max(self.bursts, key=lambda b: b.activity)

    def concentration(self, top: int = 1) -> float:
        """Share of all activity inside the *top* most intense bursts."""
        if self.total_activity == 0:
            return 0.0
        ranked = sorted((b.activity for b in self.bursts), reverse=True)
        return sum(ranked[:top]) / self.total_activity


def monthly_activity(metrics: ProjectMetrics) -> dict[int, int]:
    """Total activity per running month (months with none are absent)."""
    by_month: dict[int, int] = {}
    for transition in metrics.transitions:
        if transition.activity:
            by_month[transition.running_month] = (
                by_month.get(transition.running_month, 0) + transition.activity
            )
    return by_month


def burst_profile(metrics: ProjectMetrics) -> BurstProfile:
    """Detect bursts: maximal runs of consecutive months with activity."""
    per_month = monthly_activity(metrics)
    months_observed = max(
        [t.running_month for t in metrics.transitions], default=0
    )
    bursts: list[Burst] = []
    current_start: int | None = None
    current_activity = 0
    for month in range(1, months_observed + 2):
        amount = per_month.get(month, 0)
        if amount:
            if current_start is None:
                current_start = month
                current_activity = 0
            current_activity += amount
        elif current_start is not None:
            bursts.append(
                Burst(
                    start_month=current_start,
                    end_month=month - 1,
                    activity=current_activity,
                )
            )
            current_start = None
    return BurstProfile(
        project=metrics.project,
        months_observed=months_observed,
        bursts=tuple(bursts),
        total_activity=metrics.total_activity,
    )
