"""Per-table lives: birth, death, duration, and update activity.

The paper's earlier companion studies ([14], [15]) analyse *tables*
rather than schemata, summarized by the **Electrolysis pattern**:
"whereas dead tables are attracted to lives of short or medium duration
and absence of schema update activity, survivors are mostly located at
medium or high durations and the more active they are, the stronger
they are attracted towards high durations."

This module derives per-table lives from a :class:`SchemaHistory` and
aggregates the pattern's statistics so the extension bench can verify
the shape on the synthetic corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.diff import ChangeKind, diff_schemas
from repro.core.history import SchemaHistory

_DAYS_PER_MONTH = 30.4375
_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class TableLife:
    """One table's biography inside a schema history."""

    project: str
    table: str
    birth_version: int  # version index where the table first appears
    death_version: int | None  # version index where it disappeared, or None
    birth_ts: int
    end_ts: int  # death time, or the history's last version time
    activity: int  # intra-table attribute updates during its life

    @property
    def is_survivor(self) -> bool:
        """Alive at the last observed version of the schema."""
        return self.death_version is None

    @property
    def duration_months(self) -> int:
        days = (self.end_ts - self.birth_ts) / _SECONDS_PER_DAY
        return max(1, round(days / _DAYS_PER_MONTH))

    @property
    def is_active(self) -> bool:
        """Any intra-table update at all (the [15] notion of activity)."""
        return self.activity > 0


@dataclass(frozen=True)
class TableLivesStudy:
    """All table lives of a corpus plus the Electrolysis aggregates."""

    lives: tuple[TableLife, ...]

    @property
    def survivors(self) -> list[TableLife]:
        return [life for life in self.lives if life.is_survivor]

    @property
    def dead(self) -> list[TableLife]:
        return [life for life in self.lives if not life.is_survivor]

    @staticmethod
    def _median(values: list[float]) -> float:
        if not values:
            raise ValueError("empty sample")
        ordered = sorted(values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[middle])
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    def median_duration(self, survivors: bool) -> float:
        pool = self.survivors if survivors else self.dead
        return self._median([life.duration_months for life in pool])

    def active_share(self, survivors: bool) -> float:
        pool = self.survivors if survivors else self.dead
        if not pool:
            return 0.0
        return sum(1 for life in pool if life.is_active) / len(pool)

    def survival_curve(self):
        """Kaplan-Meier curve of table lifetimes.

        Dead tables are events; survivors are right-censored at the end
        of the observation window — the canonical treatment for the
        duration side of the Electrolysis analysis.
        """
        from repro.stats.survival import kaplan_meier

        durations = [life.duration_months for life in self.lives]
        observed = [not life.is_survivor for life in self.lives]
        return kaplan_meier(durations, observed)

    def electrolysis_holds(self) -> bool:
        """The pattern's two poles, as stated in the related work:
        dead tables live shorter and quieter; survivors live longer."""
        if not self.dead or not self.survivors:
            return True  # nothing to contrast
        longer_lives = self.median_duration(survivors=True) >= self.median_duration(
            survivors=False
        )
        quieter_dead = self.active_share(survivors=False) <= self.active_share(
            survivors=True
        )
        return longer_lives and quieter_dead


_INTRA_TABLE_KINDS = {
    ChangeKind.INJECTED,
    ChangeKind.EJECTED,
    ChangeKind.TYPE_CHANGED,
    ChangeKind.PK_CHANGED,
}


def table_lives_of(history: SchemaHistory) -> list[TableLife]:
    """Derive every table's life from one schema history."""
    if not history.versions:
        return []
    births: dict[str, tuple[int, int, str]] = {}  # key -> (version, ts, name)
    activity: dict[str, int] = {}
    lives: list[TableLife] = []

    v0 = history.v0
    for table in v0.schema.tables:
        births[table.key] = (0, v0.timestamp, table.name)
        activity[table.key] = 0

    for index, (older, newer) in enumerate(history.transitions(), start=1):
        diff = diff_schemas(older.schema, newer.schema)
        for change in diff.changes:
            if change.kind in _INTRA_TABLE_KINDS:
                activity[change.table.lower()] = activity.get(change.table.lower(), 0) + 1
        for name in diff.tables_inserted:
            births[name.lower()] = (index, newer.timestamp, name)
            activity.setdefault(name.lower(), 0)
        for name in diff.tables_deleted:
            key = name.lower()
            birth_version, birth_ts, original_name = births.pop(
                key, (index - 1, older.timestamp, name)
            )
            lives.append(
                TableLife(
                    project=history.project,
                    table=original_name,
                    birth_version=birth_version,
                    death_version=index,
                    birth_ts=birth_ts,
                    end_ts=newer.timestamp,
                    activity=activity.pop(key, 0),
                )
            )

    last_ts = history.last.timestamp
    for key, (birth_version, birth_ts, name) in births.items():
        lives.append(
            TableLife(
                project=history.project,
                table=name,
                birth_version=birth_version,
                death_version=None,
                birth_ts=birth_ts,
                end_ts=last_ts,
                activity=activity.get(key, 0),
            )
        )
    return lives


def study_table_lives(histories: list[SchemaHistory]) -> TableLivesStudy:
    """Run the table-level study over many histories."""
    lives: list[TableLife] = []
    for history in histories:
        lives.extend(table_lives_of(history))
    return TableLivesStudy(lives=tuple(lives))
