"""The schema-migration advisor: from measuring evolution to recommending it.

Given a project's stored history and a proposed DDL change, the advisor
infers the SMO sequence, renders a versioned + invertible migration
script (up/down, registry discipline), and flags changes that are
atypical for the project's evolution profile (taxon + heartbeat
distribution).  Advice is persisted as first-class store rows and
served over ``POST /v1/projects/{id}/advise`` — the system's first
write-path endpoint.
"""

from repro.advisor.engine import (
    Advice,
    AdvisorError,
    MigrationPlan,
    advise,
    canonical_schema,
    parse_proposal,
)
from repro.advisor.findings import (
    MASS_INJECTION_THRESHOLD,
    SEVERITIES,
    Finding,
    evaluate_findings,
)

__all__ = [
    "Advice",
    "AdvisorError",
    "Finding",
    "MASS_INJECTION_THRESHOLD",
    "MigrationPlan",
    "SEVERITIES",
    "advise",
    "canonical_schema",
    "evaluate_findings",
    "parse_proposal",
]
