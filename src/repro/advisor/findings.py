"""The atypicality catalogue: is this proposal in character?

The paper's central result is that projects settle into *profiles*
(taxa) — frozen schemata stay frozen, focused-shot projects change in
one early burst, and so on.  A proposed DDL change can therefore be
judged against the project's own record: a Frozen project suddenly
injecting twenty attributes is not wrong SQL, but it is wildly out of
profile and worth flagging before it lands.

Each check below compares the proposal's metric deltas (a
:class:`~repro.core.diff.TransitionDiff` of latest-stored vs proposed
schema) with the project's taxon and its per-transition heartbeat
distribution, and emits :class:`Finding` rows with severity and the
distributional evidence — JSON-friendly, deterministic, ready to be
persisted verbatim in the advice ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.diff import TransitionDiff
from repro.core.metrics import ProjectMetrics
from repro.core.taxa import Taxon, classify_metrics

#: Severity scale, mildest first; ``warning`` and up mark the proposal
#: *atypical* for the project's profile.
SEVERITIES = ("info", "notice", "warning", "critical")

#: Attribute injections at or above this count constitute a mass
#: injection (the paper's Fig 4 medians put typical per-commit activity
#: in low single digits across every taxon).
MASS_INJECTION_THRESHOLD = 10

#: A destructive change of this many attributes (or any table drop)
#: escalates from notice to warning.
DESTRUCTIVE_WARNING_THRESHOLD = 5

#: Activity below this floor never counts as an outlier, however quiet
#: the project's history is.
OUTLIER_ACTIVITY_FLOOR = 3


@dataclass(frozen=True)
class Finding:
    """One atypicality verdict: code, severity, message, evidence."""

    code: str
    severity: str
    message: str
    evidence: dict

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def is_atypical(self) -> bool:
        return SEVERITIES.index(self.severity) >= SEVERITIES.index("warning")

    def payload(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "evidence": self.evidence,
        }


def _severity_rank(finding: Finding) -> int:
    return SEVERITIES.index(finding.severity)


def _frozen_wakeup(taxon: Taxon, diff: TransitionDiff) -> Finding | None:
    if taxon not in (Taxon.FROZEN, Taxon.ALMOST_FROZEN):
        return None
    if diff.activity == 0:
        return None
    severity = "critical" if diff.activity >= MASS_INJECTION_THRESHOLD else "warning"
    return Finding(
        code="frozen_wakeup",
        severity=severity,
        message=(
            f"a {taxon.value} project proposes {diff.activity} attribute"
            " change(s); its profile predicts none"
        ),
        evidence={"taxon": taxon.value, "proposal_activity": diff.activity},
    )


def _mass_injection(diff: TransitionDiff, heartbeat: Sequence[dict]) -> Finding | None:
    injected = diff.attrs_born + diff.attrs_injected
    if injected < MASS_INJECTION_THRESHOLD:
        return None
    observed_max = max((int(row["expansion"]) for row in heartbeat), default=0)
    severity = "critical" if injected >= 2 * MASS_INJECTION_THRESHOLD else "warning"
    return Finding(
        code="mass_injection",
        severity=severity,
        message=(
            f"the proposal injects {injected} attributes in one step"
            f" (largest recorded expansion: {observed_max})"
        ),
        evidence={
            "attrs_born": diff.attrs_born,
            "attrs_injected": diff.attrs_injected,
            "max_recorded_expansion": observed_max,
        },
    )


def _destructive_change(diff: TransitionDiff) -> Finding | None:
    removed = diff.attrs_deleted + diff.attrs_ejected
    dropped_tables = len(diff.tables_deleted)
    if removed == 0 and dropped_tables == 0:
        return None
    severity = (
        "warning"
        if dropped_tables or removed >= DESTRUCTIVE_WARNING_THRESHOLD
        else "notice"
    )
    return Finding(
        code="destructive_change",
        severity=severity,
        message=(
            f"the proposal drops {dropped_tables} table(s) and removes"
            f" {removed} attribute(s); the down script restores them"
            " structurally but not their data"
        ),
        evidence={
            "tables_deleted": dropped_tables,
            "attrs_deleted": diff.attrs_deleted,
            "attrs_ejected": diff.attrs_ejected,
        },
    )


def _activity_outlier(
    diff: TransitionDiff, heartbeat: Sequence[dict]
) -> Finding | None:
    activities = [int(row["activity"]) for row in heartbeat]
    if not activities or diff.activity < OUTLIER_ACTIVITY_FLOOR:
        return None
    observed_max = max(activities)
    if diff.activity <= observed_max:
        return None
    mean = sum(activities) / len(activities)
    return Finding(
        code="activity_outlier",
        severity="warning",
        message=(
            f"proposal activity {diff.activity} exceeds every recorded"
            f" transition (max {observed_max} over {len(activities)}"
            " transitions)"
        ),
        evidence={
            "proposal_activity": diff.activity,
            "observed_max": observed_max,
            "observed_mean": round(mean, 3),
            "observed_transitions": len(activities),
        },
    )


def _taxon_shift(
    taxon: Taxon, metrics: ProjectMetrics, diff: TransitionDiff
) -> Finding | None:
    """Would the project re-classify if this proposal landed as a commit?"""
    activity = diff.activity
    would_be = classify_metrics(
        n_commits=metrics.n_commits + 1,
        active_commits=metrics.active_commits + (1 if activity > 0 else 0),
        total_activity=metrics.total_activity + activity,
        reeds=metrics.reeds + (1 if activity >= metrics.reed_limit else 0),
    )
    if would_be is taxon:
        return None
    return Finding(
        code="taxon_shift",
        severity="notice",
        message=(
            f"accepting the proposal would re-classify the project from"
            f" {taxon.value} to {would_be.value}"
        ),
        evidence={
            "taxon": taxon.value,
            "would_be": would_be.value,
            "proposal_activity": activity,
            "total_activity_after": metrics.total_activity + activity,
        },
    )


def evaluate_findings(
    taxon: Taxon,
    metrics: ProjectMetrics,
    diff: TransitionDiff,
    heartbeat: Iterable[dict] = (),
) -> tuple[Finding, ...]:
    """Run the whole catalogue; most severe findings first.

    *heartbeat* rows are the store's per-transition dicts (only their
    ``expansion`` and ``activity`` columns are read), so the evidence a
    sharded store gathers is identical to the single-file store's.
    """
    rows = list(heartbeat)
    candidates = (
        _frozen_wakeup(taxon, diff),
        _mass_injection(diff, rows),
        _destructive_change(diff),
        _activity_outlier(diff, rows),
        _taxon_shift(taxon, metrics, diff),
    )
    found = [finding for finding in candidates if finding is not None]
    found.sort(key=lambda finding: (-_severity_rank(finding), finding.code))
    return tuple(found)
