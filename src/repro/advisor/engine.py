"""The advisor engine: proposed DDL in, versioned migration + verdict out.

Closes the measure→recommend loop (Etien & Anquetil, arxiv 2404.08525):
given a project's stored history and the *full proposed schema* as DDL
text, the engine

1. infers the SMO sequence transforming the latest stored version into
   the proposal (:func:`repro.smo.infer_smos`) and renders it as a
   versioned migration — an ``up`` script, its exact inverse ``down``
   script, a from→to version pair and a checksum, following the
   version-bump/migration-registry discipline: apply ``up`` only when
   the live schema version equals ``from_version``, bump to
   ``to_version`` in the same transaction, and the pair is idempotent
   under that guard (a replayed migration is a no-op because the
   version no longer matches);
2. judges the proposal against the project's evolution profile
   (:mod:`repro.advisor.findings`) — taxon, heartbeat distribution,
   destructive potential — and attaches the findings.

Both invariants the study's algebra guarantees are checked on every
advised migration, not just in tests: ``apply_script(old, ops) ==
proposed`` and ``apply_script(proposed, invert_script(ops)) == old``,
compared via :func:`canonical_schema` (table/attribute order carries no
identity in the model).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.advisor.findings import Finding, evaluate_findings
from repro.core.project import ProjectHistory
from repro.core.taxa import Taxon, classify
from repro.core.diff import TransitionDiff, diff_schemas
from repro.schema.builder import build_schema
from repro.schema.model import Schema
from repro.smo import (
    SmoOperation,
    apply_script,
    infer_smos,
    invert_script,
    render_script,
)


class AdvisorError(Exception):
    """The proposal cannot be advised on (bad DDL, empty schema, ...)."""


def canonical_schema(schema: Schema) -> Schema:
    """*schema* with tables and attributes in canonical (name) order.

    Table and attribute identity is the case-insensitive name
    (:mod:`repro.schema.model`); position only reflects file order and
    carries no meaning, so the algebra's round-trip invariants are
    checked on this projection — ``apply_script`` appends added columns
    at the end, which must compare equal to a proposal declaring the
    same column mid-table.
    """
    from dataclasses import replace

    return Schema(
        tables=tuple(
            replace(
                table,
                attributes=tuple(
                    sorted(table.attributes, key=lambda a: a.key)
                ),
            )
            for table in sorted(schema.tables, key=lambda t: t.key)
        )
    )


@dataclass(frozen=True)
class MigrationPlan:
    """One versioned, invertible migration: the registry-entry shape.

    ``from_version``/``to_version`` are the schema-version ledger
    ordinals the migration moves between; the guard "apply only when
    the live version equals ``from_version``" is what makes the script
    idempotent in the registry discipline.
    """

    from_version: int
    to_version: int
    operations: tuple[SmoOperation, ...]
    up: str
    down: str
    checksum: str

    @property
    def cost(self) -> int:
        return sum(op.cost for op in self.operations)

    def payload(self) -> dict:
        return {
            "from_version": self.from_version,
            "to_version": self.to_version,
            "operations": [
                {"op": type(op).__name__, "description": op.describe(),
                 "cost": op.cost}
                for op in self.operations
            ],
            "up": self.up,
            "down": self.down,
            "checksum": self.checksum,
            "cost": self.cost,
            "precondition": f"schema_version == {self.from_version}",
        }


@dataclass(frozen=True)
class Advice:
    """The full advisor verdict for one (project, proposal) pair."""

    project: str
    project_id: int
    taxon: Taxon
    base_version: int
    base_size: tuple[int, int]  # (tables, attributes)
    proposed_size: tuple[int, int]
    diff: TransitionDiff
    migration: MigrationPlan
    findings: tuple[Finding, ...]

    @property
    def atypical(self) -> bool:
        return any(finding.is_atypical for finding in self.findings)

    def payload(self) -> dict:
        """The JSON shape served (and persisted) for this advice."""
        return {
            "project": self.project,
            "project_id": self.project_id,
            "taxon": self.taxon.value,
            "base": {
                "version": self.base_version,
                "tables": self.base_size[0],
                "attributes": self.base_size[1],
            },
            "proposed": {
                "tables": self.proposed_size[0],
                "attributes": self.proposed_size[1],
            },
            "delta": {
                "attrs_born": self.diff.attrs_born,
                "attrs_injected": self.diff.attrs_injected,
                "attrs_deleted": self.diff.attrs_deleted,
                "attrs_ejected": self.diff.attrs_ejected,
                "attrs_type_changed": self.diff.attrs_type_changed,
                "attrs_pk_changed": self.diff.attrs_pk_changed,
                "tables_inserted": len(self.diff.tables_inserted),
                "tables_deleted": len(self.diff.tables_deleted),
                "expansion": self.diff.expansion,
                "maintenance": self.diff.maintenance,
                "activity": self.diff.activity,
            },
            "migration": self.migration.payload(),
            "findings": [finding.payload() for finding in self.findings],
            "atypical": self.atypical,
        }


def parse_proposal(ddl: str) -> Schema:
    """Parse proposed DDL text into a schema, or raise :class:`AdvisorError`."""
    if not isinstance(ddl, str) or not ddl.strip():
        raise AdvisorError("the proposal must be non-empty DDL text")
    try:
        proposed = build_schema(ddl, lenient=True)
    except Exception as exc:
        raise AdvisorError(f"the proposal does not parse: {exc}") from exc
    if proposed.size.tables == 0:
        raise AdvisorError("the proposal declares no tables (no CREATE TABLE parsed)")
    return proposed


def advise(
    history: ProjectHistory,
    proposal_ddl: str,
    project_id: int,
    taxon: str | None = None,
    heartbeat_rows: list[dict] | None = None,
) -> Advice:
    """Advise on moving *history*'s latest schema to *proposal_ddl*.

    *taxon* is the stored classification (its enum ``value``); when the
    store has none (e.g. a rigid project), the project is re-classified
    from its own metrics.  *heartbeat_rows* feed the distributional
    evidence; omitted rows just mute the distribution-based findings.
    """
    proposed = parse_proposal(proposal_ddl)
    versions = history.history.versions
    if not versions:
        raise AdvisorError(f"{history.name} has no stored schema versions")
    base = versions[-1]
    old = base.schema
    operations = tuple(infer_smos(old, proposed))
    canonical_old = canonical_schema(old)
    canonical_new = canonical_schema(proposed)
    if canonical_schema(apply_script(old, operations)) != canonical_new:
        raise AdvisorError(
            "SMO inference does not reproduce the proposal"
        )  # pragma: no cover - the algebra guarantees this
    if (
        canonical_schema(apply_script(proposed, invert_script(operations)))
        != canonical_old
    ):
        raise AdvisorError(
            "the inverted script does not restore the base schema"
        )  # pragma: no cover - the algebra guarantees this
    up = render_script(operations, old)
    down = render_script(invert_script(operations), proposed)
    checksum = hashlib.sha256(
        f"{base.index}\n{up}\n--\n{down}".encode("utf-8")
    ).hexdigest()[:16]
    migration = MigrationPlan(
        from_version=base.index,
        to_version=base.index + 1,
        operations=operations,
        up=up,
        down=down,
        checksum=checksum,
    )
    resolved_taxon = None
    if taxon is not None:
        for candidate in Taxon:
            if taxon in (candidate.value, candidate.short, candidate.name.lower()):
                resolved_taxon = candidate
                break
    if resolved_taxon is None:
        resolved_taxon = classify(history.metrics)
    diff = diff_schemas(old, proposed)
    findings = evaluate_findings(
        resolved_taxon, history.metrics, diff, heartbeat_rows or ()
    )
    return Advice(
        project=history.name,
        project_id=project_id,
        taxon=resolved_taxon,
        base_version=base.index,
        base_size=(old.size.tables, old.size.attributes),
        proposed_size=(proposed.size.tables, proposed.size.attributes),
        diff=diff,
        migration=migration,
        findings=findings,
    )
