"""The pipeline driver: concurrency, fault isolation, and timing.

``MeasurementPipeline.run`` pushes every :class:`ProjectTask` through
the stage chain.  With ``jobs > 1`` projects execute concurrently on a
thread pool — the workload alternates pure-python parsing with shared
cache lookups, and results are assembled strictly in input order, so a
parallel run is byte-identical to a serial one.  A stage that raises
demotes its project to a :class:`ProjectFailure`; the rest of the corpus
is unaffected.

Resilience (opt-in via :class:`PipelineConfig`): a ``retry`` policy
re-runs a failed project from a *fresh* context with deterministic
backoff, ``project_deadline`` bounds each project's total wall time
(checked before every stage; :class:`~repro.resilience.DeadlineExceeded`
is never retried), and an ``injector`` arms seeded chaos at every stage
boundary.  Attempts are recorded on the surviving context/failure and
published to the run's metrics registry.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.core.heartbeat import DEFAULT_REED_LIMIT
from repro.obs.trace import trace
from repro.pipeline.cache import SchemaCache
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.policy import NO_RETRY, Deadline, DeadlineExceeded, RetryPolicy
from repro.pipeline.stages import (
    ClassifyStage,
    DiffStage,
    ExtractStage,
    MeasureStage,
    Outcome,
    ParseStage,
    ProjectContext,
    ProjectFailure,
    ProjectTask,
    Stage,
)
from repro.pipeline.stats import PipelineStats
from repro.vcs.history import LinearizationPolicy
from repro.vcs.repository import Repository

#: Maps a repository name to its clone, or None when it has vanished.
RepoProvider = Callable[[str], Repository | None]


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that parameterizes one pipeline instance."""

    policy: LinearizationPolicy = LinearizationPolicy.FULL
    reed_limit: int = DEFAULT_REED_LIMIT
    jobs: int = 1
    cache_dir: str | None = None
    lenient: bool = True
    retry: RetryPolicy = field(default=NO_RETRY)
    project_deadline: float | None = None  # wall-second budget per project
    injector: FaultInjector | None = None  # seeded chaos, off by default


class MeasurementPipeline:
    """Composes the five stages and drives projects through them."""

    def __init__(
        self,
        provider: RepoProvider,
        config: PipelineConfig = PipelineConfig(),
        cache: SchemaCache | None = None,
        stages: Sequence[Stage] | None = None,
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else SchemaCache(config.cache_dir)
        self.stats = PipelineStats(jobs=max(1, config.jobs), cache=self.cache.counters)
        self.stages: tuple[Stage, ...] = (
            tuple(stages)
            if stages is not None
            else (
                ExtractStage(provider, policy=config.policy),
                ParseStage(self.cache, lenient=config.lenient),
                DiffStage(self.cache),
                MeasureStage(self.cache, reed_limit=config.reed_limit),
                ClassifyStage(),
            )
        )

    # -- single project ---------------------------------------------------

    def run_project(self, task: ProjectTask) -> ProjectContext:
        """Push one task through the chain; never raises for a bad project.

        A failing project is retried from a fresh context under the
        config's :class:`~repro.resilience.RetryPolicy` (default: one
        attempt, i.e. no retries).  The surviving context carries the
        attempt count, and an exhausted retry budget stamps it onto the
        :class:`ProjectFailure` record.
        """
        retry = self.config.retry
        deadline = Deadline(self.config.project_deadline)
        ctx = ProjectContext(task=task)
        attempt = 1
        for attempt in range(1, retry.max_attempts + 1):
            ctx, caught = self._attempt(task, attempt, deadline)
            if ctx.outcome is not Outcome.FAILED:
                if attempt > 1:
                    self.stats.note_recovered()
                break
            retryable = (
                attempt < retry.max_attempts
                and not isinstance(caught, DeadlineExceeded)
                and not deadline.expired
            )
            if not retryable:
                break
            assert ctx.failure is not None
            self.stats.note_retry(ctx.failure.stage)
            delay = deadline.bound(retry.delay_for(attempt, key=task.repo_name))
            if delay > 0:
                time.sleep(delay)
        ctx.attempts = attempt
        if ctx.failure is not None:
            ctx.failure = replace(ctx.failure, attempts=attempt)
        return ctx

    def _attempt(
        self, task: ProjectTask, attempt: int, deadline: Deadline
    ) -> tuple[ProjectContext, Exception | None]:
        """One pass through the stage chain on a fresh context."""
        ctx = ProjectContext(task=task)
        injector = self.config.injector
        caught: Exception | None = None
        for stage in self.stages:
            if ctx.is_terminal:
                break
            started = time.perf_counter()
            try:
                with trace(f"stage.{stage.name}", project=task.repo_name) as span:
                    if span is not None and attempt > 1:
                        span.attrs["attempt"] = attempt
                    deadline.check(stage.name)
                    if injector is not None:
                        injector.check(stage.name, task.repo_name, attempt)
                    stage.run(ctx)
                    if span is not None and ctx.outcome is not None:
                        span.attrs["outcome"] = ctx.outcome.value
            except Exception as exc:  # fault isolation: demote, don't abort
                caught = exc
                ctx.outcome = Outcome.FAILED
                ctx.failure = ProjectFailure(
                    project=task.repo_name,
                    stage=stage.name,
                    error=type(exc).__name__,
                    message=str(exc),
                )
                if isinstance(exc, InjectedFault):
                    self.stats.note_fault_injected(stage.name)
                if isinstance(exc, DeadlineExceeded):
                    self.stats.note_deadline_exceeded(stage.name)
            finally:
                self.stats.note_stage(stage.name, time.perf_counter() - started)
        return ctx, caught

    # -- the whole corpus -------------------------------------------------

    def run(self, tasks: Iterable[ProjectTask]) -> list[ProjectContext]:
        """Run every task; results come back in input order regardless of
        scheduling, so ``jobs=1`` and ``jobs=N`` yield identical output."""
        task_list = list(tasks)
        started = time.perf_counter()
        jobs = max(1, self.config.jobs)
        with trace("pipeline.run", projects=len(task_list), jobs=jobs):
            if jobs == 1 or len(task_list) <= 1:
                results = [self.run_project(task) for task in task_list]
            else:
                with ThreadPoolExecutor(max_workers=jobs) as executor:
                    results = list(executor.map(self.run_project, task_list))
        failed = sum(1 for ctx in results if ctx.outcome is Outcome.FAILED)
        self.stats.note_run(
            projects=len(task_list),
            completed=len(results) - failed,
            failures=failed,
            wall_seconds=time.perf_counter() - started,
        )
        return results

    # -- bring-your-own-history clients -----------------------------------

    def measure_versions(
        self,
        name: str,
        ddl_path: str,
        versions: Sequence[tuple[str, int, str]],
        domain: str = "",
    ) -> ProjectContext:
        """Measure an explicit (oid, timestamp, text) version list.

        The CLI's ``classify`` command (and any caller holding raw file
        contents rather than a repository) enters the pipeline here:
        a single-commit-per-version repository is synthesized so the
        ordinary extract stage — and with it the schema cache — serves
        the request.
        """
        repo = Repository(name)
        for oid, timestamp, text in versions:
            repo.commit(
                {ddl_path: text.encode("utf-8", errors="replace")},
                author="pipeline",
                timestamp=timestamp,
                message=oid,
            )
        one_shot = MeasurementPipeline(
            provider=lambda _: repo,
            config=self.config,
            cache=self.cache,
            stages=(
                ExtractStage(lambda _: repo, policy=self.config.policy),
                ParseStage(self.cache, lenient=self.config.lenient),
                DiffStage(self.cache),
                MeasureStage(self.cache, reed_limit=self.config.reed_limit),
                ClassifyStage(),
            ),
        )
        one_shot.stats = self.stats  # timings accrue to the shared run
        return one_shot.run_project(ProjectTask(name, ddl_path, domain))
