"""The pipeline driver: fault isolation, retries, and timing.

``MeasurementPipeline.run`` pushes every :class:`ProjectTask` through
the stage chain.  *How* the batch is scheduled is delegated to a
pluggable :class:`~repro.pipeline.backends.ExecutionBackend` chosen by
``PipelineConfig.executor`` — serial, the legacy thread pool, or worker
processes (the default for ``jobs > 1``, since the workload is
CPU-bound python and threads lose to the GIL).  Whatever the backend,
results are assembled strictly in input order, so every executor yields
byte-identical reports.  A stage that raises demotes its project to a
:class:`ProjectFailure`; the rest of the corpus is unaffected.

Resilience (opt-in via :class:`PipelineConfig`): a ``retry`` policy
re-runs a failed project from a *fresh* context with deterministic
backoff, ``project_deadline`` bounds each project's total wall time
(checked before every stage; :class:`~repro.resilience.DeadlineExceeded`
is never retried), and an ``injector`` arms seeded chaos at every stage
boundary.  Attempts are recorded on the surviving context/failure and
published to the run's metrics registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.core.heartbeat import DEFAULT_REED_LIMIT
from repro.obs.trace import trace
from repro.pipeline.cache import SchemaCache
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.policy import NO_RETRY, Deadline, DeadlineExceeded, RetryPolicy
from repro.pipeline.stages import (
    ClassifyStage,
    DiffStage,
    ExtractStage,
    MeasureStage,
    Outcome,
    ParseStage,
    ProjectContext,
    ProjectFailure,
    ProjectTask,
    SeededExtractStage,
    SeedMap,
    Stage,
)
from repro.pipeline.stats import PipelineStats
from repro.vcs.history import LinearizationPolicy
from repro.vcs.repository import Repository

#: Maps a repository name to its clone, or None when it has vanished.
RepoProvider = Callable[[str], Repository | None]


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that parameterizes one pipeline instance."""

    policy: LinearizationPolicy = LinearizationPolicy.FULL
    reed_limit: int = DEFAULT_REED_LIMIT
    jobs: int = 1
    cache_dir: str | None = None
    lenient: bool = True
    retry: RetryPolicy = field(default=NO_RETRY)
    project_deadline: float | None = None  # wall-second budget per project
    injector: FaultInjector | None = None  # seeded chaos, off by default
    executor: str = "auto"  # serial | thread | process; auto picks by jobs


class MeasurementPipeline:
    """Composes the five stages and drives projects through them."""

    def __init__(
        self,
        provider: RepoProvider,
        config: PipelineConfig = PipelineConfig(),
        cache: SchemaCache | None = None,
        stages: Sequence[Stage] | None = None,
        seeds: SeedMap | None = None,
    ) -> None:
        """*seeds* replaces the extract stage with a
        :class:`SeededExtractStage` over pre-extracted histories (the
        incremental ingest's fingerprint pass already walked them); the
        process backend ships those version lists to its workers.
        An explicit *stages* chain wins over both and pins execution to
        in-process backends (closures cannot cross a fork)."""
        self.config = config
        self.provider = provider
        self.seeds = dict(seeds) if seeds is not None else None
        self._custom_stages = stages is not None
        self.cache = cache if cache is not None else SchemaCache(config.cache_dir)
        self.stats = PipelineStats(jobs=max(1, config.jobs), cache=self.cache.counters)
        if stages is not None:
            self.stages: tuple[Stage, ...] = tuple(stages)
        else:
            extract: Stage = (
                SeededExtractStage(self.seeds)
                if self.seeds is not None
                else ExtractStage(provider, policy=config.policy)
            )
            self.stages = (
                extract,
                ParseStage(self.cache, lenient=config.lenient),
                DiffStage(self.cache),
                MeasureStage(self.cache, reed_limit=config.reed_limit),
                ClassifyStage(),
            )

    # -- single project ---------------------------------------------------

    def run_project(self, task: ProjectTask) -> ProjectContext:
        """Push one task through the chain; never raises for a bad project.

        A failing project is retried from a fresh context under the
        config's :class:`~repro.resilience.RetryPolicy` (default: one
        attempt, i.e. no retries).  The surviving context carries the
        attempt count, and an exhausted retry budget stamps it onto the
        :class:`ProjectFailure` record.
        """
        retry = self.config.retry
        deadline = Deadline(self.config.project_deadline)
        ctx = ProjectContext(task=task)
        attempt = 1
        for attempt in range(1, retry.max_attempts + 1):
            ctx, caught = self._attempt(task, attempt, deadline)
            if ctx.outcome is not Outcome.FAILED:
                if attempt > 1:
                    self.stats.note_recovered()
                break
            retryable = (
                attempt < retry.max_attempts
                and not isinstance(caught, DeadlineExceeded)
                and not deadline.expired
            )
            if not retryable:
                break
            assert ctx.failure is not None
            self.stats.note_retry(ctx.failure.stage)
            delay = deadline.bound(retry.delay_for(attempt, key=task.repo_name))
            if delay > 0:
                time.sleep(delay)
        ctx.attempts = attempt
        if ctx.failure is not None:
            ctx.failure = replace(ctx.failure, attempts=attempt)
        return ctx

    def _attempt(
        self, task: ProjectTask, attempt: int, deadline: Deadline
    ) -> tuple[ProjectContext, Exception | None]:
        """One pass through the stage chain on a fresh context."""
        ctx = ProjectContext(task=task)
        injector = self.config.injector
        caught: Exception | None = None
        for stage in self.stages:
            if ctx.is_terminal:
                break
            started = time.perf_counter()
            try:
                with trace(f"stage.{stage.name}", project=task.repo_name) as span:
                    if span is not None and attempt > 1:
                        span.attrs["attempt"] = attempt
                    deadline.check(stage.name)
                    if injector is not None:
                        injector.check(stage.name, task.repo_name, attempt)
                    stage.run(ctx)
                    if span is not None and ctx.outcome is not None:
                        span.attrs["outcome"] = ctx.outcome.value
            except Exception as exc:  # fault isolation: demote, don't abort
                caught = exc
                ctx.outcome = Outcome.FAILED
                ctx.failure = ProjectFailure(
                    project=task.repo_name,
                    stage=stage.name,
                    error=type(exc).__name__,
                    message=str(exc),
                )
                if isinstance(exc, InjectedFault):
                    self.stats.note_fault_injected(stage.name)
                if isinstance(exc, DeadlineExceeded):
                    self.stats.note_deadline_exceeded(stage.name)
            finally:
                self.stats.note_stage(stage.name, time.perf_counter() - started)
        return ctx, caught

    # -- the whole corpus -------------------------------------------------

    def run(self, tasks: Iterable[ProjectTask]) -> list[ProjectContext]:
        """Run every task; results come back in input order regardless of
        scheduling, so every backend and job count yields identical
        output.  Scheduling itself is delegated to the
        :class:`~repro.pipeline.backends.ExecutionBackend` selected by
        ``config.executor``."""
        from repro.pipeline.backends import resolve_backend

        task_list = list(tasks)
        started = time.perf_counter()
        jobs = max(1, self.config.jobs)
        backend = resolve_backend(
            self.config.executor, jobs, custom_stages=self._custom_stages
        )
        with trace(
            "pipeline.run",
            projects=len(task_list),
            jobs=jobs,
            executor=backend.name,
        ):
            results = backend.execute(self, task_list)
        failed = sum(1 for ctx in results if ctx.outcome is Outcome.FAILED)
        self.stats.note_run(
            projects=len(task_list),
            completed=len(results) - failed,
            failures=failed,
            wall_seconds=time.perf_counter() - started,
        )
        return results

    # -- bring-your-own-history clients -----------------------------------

    def measure_versions(
        self,
        name: str,
        ddl_path: str,
        versions: Sequence[tuple[str, int, str]],
        domain: str = "",
    ) -> ProjectContext:
        """Measure an explicit (oid, timestamp, text) version list.

        The CLI's ``classify`` command (and any caller holding raw file
        contents rather than a repository) enters the pipeline here:
        a single-commit-per-version repository is synthesized so the
        ordinary extract stage — and with it the schema cache — serves
        the request.
        """
        repo = Repository(name)
        for oid, timestamp, text in versions:
            repo.commit(
                {ddl_path: text.encode("utf-8", errors="replace")},
                author="pipeline",
                timestamp=timestamp,
                message=oid,
            )
        one_shot = MeasurementPipeline(
            provider=lambda _: repo,
            config=self.config,
            cache=self.cache,
            stages=(
                ExtractStage(lambda _: repo, policy=self.config.policy),
                ParseStage(self.cache, lenient=self.config.lenient),
                DiffStage(self.cache),
                MeasureStage(self.cache, reed_limit=self.config.reed_limit),
                ClassifyStage(),
            ),
        )
        one_shot.stats = self.stats  # timings accrue to the shared run
        return one_shot.run_project(ProjectTask(name, ddl_path, domain))
