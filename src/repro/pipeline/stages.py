"""The five pipeline stages and the records flowing between them.

Each stage is a small object with a ``name`` and a ``run(ctx)`` method
mutating one :class:`ProjectContext`.  A stage either advances the
context, or finishes it by setting a terminal :class:`Outcome` (the
funnel's removal categories are terminal outcomes, not exceptions).
Anything a stage *raises* is caught by the pipeline and demoted to a
structured :class:`ProjectFailure` — one malformed project must never
abort the other 194.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.heartbeat import DEFAULT_REED_LIMIT
from repro.core.history import SchemaHistory, history_from_versions
from repro.core.metrics import ProjectMetrics, compute_metrics
from repro.core.project import ProjectHistory, repo_stats_of
from repro.core.taxa import Taxon, classify
from repro.pipeline.cache import SchemaCache
from repro.vcs.history import FileVersion, LinearizationPolicy, extract_file_history
from repro.vcs.repository import Repository


class Outcome(enum.Enum):
    """Where a project ended up; mirrors the funnel's removal stages."""

    ZERO_VERSIONS = "zero-versions"  # gone from GitHub, or stale path
    NO_CREATE = "no-create-table"  # .sql file never declares a table
    RIGID = "rigid"  # single schema version, set aside
    STUDIED = "studied"  # measured and classified
    FAILED = "failed"  # demoted to a ProjectFailure


@dataclass(frozen=True)
class ProjectTask:
    """One unit of pipeline input: a repository and its chosen DDL file.

    ``dialect`` names the frontend the parse stage routes through (see
    :mod:`repro.sqlddl.dialects`); the default keeps the historical
    MySQL-only path and its byte-identical output.
    """

    repo_name: str
    ddl_path: str
    domain: str = ""
    dialect: str = "mysql"


@dataclass(frozen=True)
class ProjectFailure:
    """A project-stage crash, demoted to data.

    Carried in the :class:`~repro.mining.funnel.FunnelReport` so a run
    over a malformed corpus still yields every healthy project plus an
    auditable record of what broke where.
    """

    project: str
    stage: str
    error: str  # exception class name
    message: str
    attempts: int = 1  # tries consumed before the project was demoted

    def payload(self) -> dict:
        return {
            "project": self.project,
            "stage": self.stage,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class ProjectContext:
    """The state one project accumulates while flowing through stages."""

    task: ProjectTask
    repo: Repository | None = None
    file_versions: list[FileVersion] = field(default_factory=list)
    history: SchemaHistory | None = None
    metrics: ProjectMetrics | None = None
    project: ProjectHistory | None = None
    taxon: Taxon | None = None
    outcome: Outcome | None = None
    failure: ProjectFailure | None = None
    attempts: int = 1  # pipeline tries this context consumed

    @property
    def name(self) -> str:
        return self.task.repo_name

    @property
    def is_terminal(self) -> bool:
        return self.outcome is not None


@runtime_checkable
class Stage(Protocol):
    """One step of the measurement chain."""

    name: str

    def run(self, ctx: ProjectContext) -> None:
        """Advance *ctx*; set ``ctx.outcome`` to finish it."""
        ...  # pragma: no cover - protocol


def usable_versions(versions: list[FileVersion]) -> list[FileVersion]:
    """The versions that count as schema history: no deletions, no
    blank files.  Shared by :class:`ExtractStage` and the store's
    incremental ingest, so both fingerprint the same version list."""
    return [v for v in versions if not v.is_deletion and v.text.strip()]


class ExtractStage:
    """Clone-equivalent: resolve the repository, linearize the file history."""

    name = "extract"

    def __init__(self, provider, policy: LinearizationPolicy = LinearizationPolicy.FULL):
        self._provider = provider
        self._policy = policy

    def run(self, ctx: ProjectContext) -> None:
        repo = self._provider(ctx.task.repo_name)
        if repo is None:
            ctx.outcome = Outcome.ZERO_VERSIONS
            return
        ctx.repo = repo
        versions = extract_file_history(repo, ctx.task.ddl_path, policy=self._policy)
        ctx.file_versions = usable_versions(versions)
        if not ctx.file_versions:
            ctx.outcome = Outcome.ZERO_VERSIONS


#: What seeds a :class:`SeededExtractStage`: repository (or None when it
#: vanished) plus the pre-extracted usable version list, per repo name.
SeedMap = dict[str, tuple[Repository | None, list[FileVersion]]]


class SeededExtractStage:
    """An extract stage fed from pre-extracted histories.

    Two callers hold the version lists before the pipeline runs and must
    not walk them twice: the incremental ingest (its fingerprint pass
    already linearized every candidate history) and the process
    execution backend (the parent ships each worker its tasks'
    repositories and version lists, because a worker has no provider).
    """

    name = "extract"

    def __init__(self, seeds: SeedMap):
        self._seeds = seeds

    def run(self, ctx: ProjectContext) -> None:
        repo, versions = self._seeds.get(ctx.task.repo_name, (None, []))
        if repo is None:
            ctx.outcome = Outcome.ZERO_VERSIONS
            return
        ctx.repo = repo
        ctx.file_versions = list(versions)
        if not ctx.file_versions:
            ctx.outcome = Outcome.ZERO_VERSIONS


class ParseStage:
    """Scan for CREATE TABLE, then parse every version through the cache."""

    name = "parse"

    def __init__(self, cache: SchemaCache, lenient: bool = True):
        self._cache = cache
        self._lenient = lenient

    def run(self, ctx: ProjectContext) -> None:
        if not any(self._cache.has_create_table(v.text) for v in ctx.file_versions):
            ctx.outcome = Outcome.NO_CREATE
            return
        dialect = ctx.task.dialect
        if dialect and dialect != "mysql":
            cache = self._cache

            def factory(text: str, lenient: bool = True):
                return cache.schema_for(text, lenient=lenient, dialect=dialect)

        else:
            # The historical code path, bit for bit: mysql tasks hand
            # the cache method itself to history_from_versions.
            factory = self._cache.schema_for
        ctx.history = history_from_versions(
            ctx.task.repo_name,
            ctx.task.ddl_path,
            ctx.file_versions,
            lenient=self._lenient,
            schema_factory=factory,
        )


class DiffStage:
    """Diff every consecutive version pair (memoized by content hash)."""

    name = "diff"

    def __init__(self, cache: SchemaCache):
        self._cache = cache

    def run(self, ctx: ProjectContext) -> None:
        assert ctx.history is not None
        for older, newer in ctx.history.transitions():
            self._cache.diff_for(older.schema, newer.schema)


class MeasureStage:
    """The Hecate pass: per-transition and per-project measures."""

    name = "measure"

    def __init__(self, cache: SchemaCache, reed_limit: int = DEFAULT_REED_LIMIT):
        self._cache = cache
        self._reed_limit = reed_limit

    def run(self, ctx: ProjectContext) -> None:
        assert ctx.history is not None and ctx.repo is not None
        ctx.metrics = compute_metrics(
            ctx.history, reed_limit=self._reed_limit, differ=self._cache.diff_for
        )
        ctx.project = ProjectHistory(
            name=ctx.task.repo_name,
            ddl_path=ctx.task.ddl_path,
            history=ctx.history,
            metrics=ctx.metrics,
            repo_stats=repo_stats_of(ctx.repo),
            domain=ctx.task.domain,
        )


class ClassifyStage:
    """Assign the taxon; split rigid from studied."""

    name = "classify"

    def run(self, ctx: ProjectContext) -> None:
        assert ctx.project is not None and ctx.metrics is not None
        ctx.taxon = classify(ctx.metrics)
        if ctx.project.history.is_history_less:
            ctx.outcome = Outcome.RIGID
        else:
            ctx.outcome = Outcome.STUDIED
