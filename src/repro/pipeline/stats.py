"""Observability of one pipeline run: stage timings and cache effect.

The ROADMAP's scaling work (sharding, incremental re-measure, larger
corpora) needs to see where the time goes before and after each change;
:class:`PipelineStats` is that instrument.  It accumulates per-stage
wall time and per-stage project counts thread-safely (the parallel
executor reports from many workers) and carries the shared cache's
hit/miss counters, so a warm-cache run can be *proven* warm:
``stats.cache.build_schema_calls == 0``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.pipeline.cache import CacheCounters


@dataclass
class PipelineStats:
    """Counters and timings of one :class:`MeasurementPipeline` run."""

    jobs: int = 1
    projects: int = 0  # tasks that entered the pipeline
    completed: int = 0  # tasks that ran to a terminal outcome
    failures: int = 0  # tasks demoted to a ProjectFailure
    wall_seconds: float = 0.0  # end-to-end, includes scheduling
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_projects: dict[str, int] = field(default_factory=dict)
    cache: CacheCounters = field(default_factory=CacheCounters)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note_stage(self, stage: str, seconds: float) -> None:
        """Record one project passing through *stage* (thread-safe)."""
        with self._lock:
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
            self.stage_projects[stage] = self.stage_projects.get(stage, 0) + 1

    @property
    def cpu_seconds(self) -> float:
        """Summed per-stage time across all workers."""
        return sum(self.stage_seconds.values())

    def payload(self) -> dict:
        """A JSON-friendly dump (used by ``--stats`` and the exporter)."""
        return {
            "jobs": self.jobs,
            "projects": self.projects,
            "completed": self.completed,
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
            "stage_projects": dict(sorted(self.stage_projects.items())),
            "cache": self.cache.payload(),
        }

    def summary(self) -> str:
        """Human-readable block for the CLI's ``--stats`` flag."""
        lines = [
            f"pipeline: {self.projects} projects, jobs={self.jobs}, "
            f"{self.failures} failed",
            f"wall {self.wall_seconds:.3f}s, cpu {self.cpu_seconds:.3f}s",
        ]
        for stage, seconds in sorted(self.stage_seconds.items()):
            count = self.stage_projects.get(stage, 0)
            lines.append(f"  stage {stage:<10} {seconds:8.3f}s over {count} projects")
        c = self.cache
        lines.append(
            f"  cache schema {c.schema_hits} hits / {c.schema_misses} misses "
            f"({c.schema_disk_hits} from disk), "
            f"diff {c.diff_hits} hits / {c.diff_misses} misses, "
            f"scan {c.scan_hits} hits / {c.scan_misses} misses"
        )
        lines.append(f"  build_schema calls: {c.build_schema_calls}")
        return "\n".join(lines)
