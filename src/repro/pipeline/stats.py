"""Observability of one pipeline run: stage timings and cache effect.

The ROADMAP's scaling work (sharding, incremental re-measure, larger
corpora) needs to see where the time goes before and after each change;
:class:`PipelineStats` is that instrument.  Since the unified
observability layer (:mod:`repro.obs`) it is a *view* over one
:class:`~repro.obs.metrics.MetricsRegistry` — the same registry the
schema cache's counters publish into — so ``--stats``,
``pipeline_stats.json``, and any ``/metrics``-style exposition all read
one source of truth.  The classic attributes (``projects``,
``stage_seconds``, ``cache.build_schema_calls``) remain as properties,
and a warm-cache run can still be *proven* warm:
``stats.cache.build_schema_calls == 0``.

Registry series owned by this class::

    repro_pipeline_jobs                              gauge
    repro_pipeline_projects_total                    counter
    repro_pipeline_completed_total                   counter
    repro_pipeline_failures_total                    counter
    repro_pipeline_wall_seconds_total                counter
    repro_pipeline_stage_seconds_total{stage=...}    counter
    repro_pipeline_stage_projects_total{stage=...}   counter
    repro_pipeline_stage_duration_seconds{stage=...} histogram
    repro_pipeline_retries_total{stage=...}          counter
    repro_pipeline_recovered_total                   counter
    repro_pipeline_faults_injected_total{stage=...}  counter
    repro_pipeline_deadline_exceeded_total{stage=...} counter
    repro_pipeline_partition_chunks                  gauge
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.pipeline.cache import CacheCounters


class PipelineStats:
    """Counters and timings of one :class:`MeasurementPipeline` run.

    Adopts the registry of the *cache* counters it is handed (the cache
    is created first and shared across workers), so one registry holds
    the whole run; a standalone instance creates its own registry.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: CacheCounters | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if registry is None:
            registry = cache.registry if cache is not None else MetricsRegistry()
        self.registry = registry
        self.cache = cache if cache is not None else CacheCounters(registry)
        self._jobs = registry.gauge("repro_pipeline_jobs")
        self._jobs.set(jobs)
        self._projects = registry.counter("repro_pipeline_projects_total")
        self._completed = registry.counter("repro_pipeline_completed_total")
        self._failures = registry.counter("repro_pipeline_failures_total")
        self._wall = registry.counter("repro_pipeline_wall_seconds_total")
        self._partition: dict | None = None

    # -- writers ----------------------------------------------------------

    def note_stage(self, stage: str, seconds: float) -> None:
        """Record one project passing through *stage* (thread-safe)."""
        self.registry.counter(
            "repro_pipeline_stage_seconds_total", stage=stage
        ).inc(seconds)
        self.registry.counter(
            "repro_pipeline_stage_projects_total", stage=stage
        ).inc()
        self.registry.histogram(
            "repro_pipeline_stage_duration_seconds", stage=stage
        ).observe(seconds)

    def note_retry(self, stage: str) -> None:
        """One failed attempt that will be retried (stage it died in)."""
        self.registry.counter("repro_pipeline_retries_total", stage=stage).inc()

    def note_recovered(self) -> None:
        """A project that failed at least once and then succeeded."""
        self.registry.counter("repro_pipeline_recovered_total").inc()

    def note_fault_injected(self, stage: str) -> None:
        """A seeded chaos fault fired at *stage*."""
        self.registry.counter(
            "repro_pipeline_faults_injected_total", stage=stage
        ).inc()

    def note_deadline_exceeded(self, stage: str) -> None:
        """A project's time budget ran out before *stage*."""
        self.registry.counter(
            "repro_pipeline_deadline_exceeded_total", stage=stage
        ).inc()

    def note_partition(self, digest: str, chunks: int, backend: str) -> None:
        """Record how the execution backend split the task list.

        The digest is a content hash of the (ordered) task-to-chunk
        assignment, so two runs over the same inputs with the same
        backend and job count provably partitioned identically.
        """
        self._partition = {"digest": digest, "chunks": chunks, "backend": backend}
        self.registry.gauge("repro_pipeline_partition_chunks").set(chunks)

    def note_run(
        self, projects: int, completed: int, failures: int, wall_seconds: float
    ) -> None:
        """Account one ``pipeline.run()`` batch."""
        self._projects.inc(projects)
        self._completed.inc(completed)
        self._failures.inc(failures)
        self._wall.inc(wall_seconds)

    # -- the classic read API, now registry-backed ------------------------

    @property
    def jobs(self) -> int:
        return self._jobs.value

    @property
    def projects(self) -> int:
        """Tasks that entered the pipeline."""
        return self._projects.value

    @property
    def completed(self) -> int:
        """Tasks that ran to a terminal outcome."""
        return self._completed.value

    @property
    def failures(self) -> int:
        """Tasks demoted to a ProjectFailure."""
        return self._failures.value

    @property
    def wall_seconds(self) -> float:
        """End-to-end, includes scheduling."""
        return self._wall.value

    @property
    def stage_seconds(self) -> dict[str, float]:
        return self.registry.label_values(
            "repro_pipeline_stage_seconds_total", "stage"
        )

    @property
    def stage_projects(self) -> dict[str, int]:
        return self.registry.label_values(
            "repro_pipeline_stage_projects_total", "stage"
        )

    @property
    def cpu_seconds(self) -> float:
        """Summed per-stage time across all workers."""
        return sum(self.stage_seconds.values())

    @property
    def retries(self) -> int:
        """Failed attempts that were retried, summed over stages."""
        return sum(
            self.registry.label_values(
                "repro_pipeline_retries_total", "stage"
            ).values()
        )

    @property
    def recovered(self) -> int:
        """Projects that succeeded only after at least one retry."""
        return self.registry.value("repro_pipeline_recovered_total")

    @property
    def partition(self) -> dict | None:
        """The last run's partition record (digest/chunks/backend)."""
        return self._partition

    @property
    def faults_injected(self) -> int:
        """Seeded chaos faults that fired during the run."""
        return sum(
            self.registry.label_values(
                "repro_pipeline_faults_injected_total", "stage"
            ).values()
        )

    # -- rendering --------------------------------------------------------

    def snapshot(self) -> dict:
        """The run's whole registry, in the unified snapshot shape."""
        return self.registry.snapshot()

    def payload(self) -> dict:
        """A JSON-friendly dump (used by ``--stats`` and the exporter).

        The classic shape, assembled from the registry, plus the raw
        ``registry`` snapshot so downstream tooling can consume one
        format across pipeline, ingest, and serve.
        """
        return {
            "jobs": self.jobs,
            "projects": self.projects,
            "completed": self.completed,
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
            "stage_projects": dict(sorted(self.stage_projects.items())),
            "partition": self._partition,
            "cache": self.cache.payload(),
            "registry": self.snapshot(),
        }

    def summary(self) -> str:
        """Human-readable block for the CLI's ``--stats`` flag."""
        lines = [
            f"pipeline: {self.projects} projects, jobs={self.jobs}, "
            f"{self.failures} failed",
            f"wall {self.wall_seconds:.3f}s, cpu {self.cpu_seconds:.3f}s",
        ]
        for stage, seconds in sorted(self.stage_seconds.items()):
            count = self.stage_projects.get(stage, 0)
            lines.append(f"  stage {stage:<10} {seconds:8.3f}s over {count} projects")
        c = self.cache
        lines.append(
            f"  cache schema {c.schema_hits} hits / {c.schema_misses} misses "
            f"({c.schema_disk_hits} from disk), "
            f"diff {c.diff_hits} hits / {c.diff_misses} misses, "
            f"scan {c.scan_hits} hits / {c.scan_misses} misses"
        )
        lines.append(f"  build_schema calls: {c.build_schema_calls}")
        if self.retries or self.faults_injected:
            lines.append(
                f"  resilience: {self.retries} retries, "
                f"{self.recovered} recovered, "
                f"{self.faults_injected} faults injected"
            )
        return "\n".join(lines)
