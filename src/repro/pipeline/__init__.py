"""The staged measurement pipeline.

The study is embarrassingly parallel: every project pushes through the
same extract -> parse -> diff -> measure -> classify chain, and no
project depends on any other.  This package turns that chain into an
explicit, composable subsystem:

- :mod:`repro.pipeline.cache` — content-hash memoization of parsing and
  diffing (sha256 of the SQL blob -> parsed schema, schema-pair ->
  transition diff), with an optional on-disk layer so repeated runs of
  the same corpus skip all parsing;
- :mod:`repro.pipeline.stages` — the :class:`Stage` protocol and the
  five concrete stages, plus the :class:`ProjectFailure` record a
  crashing project demotes to instead of aborting the corpus;
- :mod:`repro.pipeline.stats` — per-stage wall time and cache hit/miss
  counters (:class:`PipelineStats`);
- :mod:`repro.pipeline.backends` — the pluggable
  :class:`ExecutionBackend` strategies (serial, thread pool, worker
  processes) one ``pipeline.run`` batch is scheduled by;
- :mod:`repro.pipeline.pipeline` — :class:`MeasurementPipeline`, which
  executes projects concurrently (``jobs=N``) with deterministic,
  input-ordered result assembly and per-project fault isolation.

``mining.funnel.run_funnel`` delegates its per-project chain here; the
CLI exposes the knobs as ``--jobs``, ``--executor``, ``--cache-dir``
and ``--stats``.
"""

from repro.pipeline.backends import (
    EXECUTORS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
    resolve_executor,
)
from repro.pipeline.cache import CacheCounters, SchemaCache
from repro.pipeline.pipeline import MeasurementPipeline, PipelineConfig
from repro.pipeline.stages import (
    Outcome,
    ProjectContext,
    ProjectFailure,
    ProjectTask,
    SeededExtractStage,
    Stage,
)
from repro.pipeline.stats import PipelineStats

__all__ = [
    "CacheCounters",
    "EXECUTORS",
    "ExecutionBackend",
    "MeasurementPipeline",
    "Outcome",
    "PipelineConfig",
    "PipelineStats",
    "ProcessBackend",
    "ProjectContext",
    "ProjectFailure",
    "ProjectTask",
    "SchemaCache",
    "SeededExtractStage",
    "SerialBackend",
    "Stage",
    "ThreadBackend",
    "resolve_backend",
    "resolve_executor",
]
