"""Content-hash memoization of the pipeline's expensive pure functions.

Parsing a DDL blob and diffing two schema versions are pure functions of
their inputs, so both memoize safely under content hashes:

- ``sha256(blob) -> Schema`` for :func:`repro.schema.build_schema`;
- ``sha256(blob) -> bool`` for the has-CREATE-TABLE collection scan;
- ``(schema key, schema key) -> TransitionDiff`` for
  :func:`repro.core.diff.diff_schemas`, where a schema's key is the
  hash of its canonical form (stable across processes).

Identical blobs are rampant in real histories — a commit touching the
DDL file without changing it, vendor files copied across projects, and
whole corpora re-run after an unrelated code change — so the cache turns
the dominant cost of a re-run into dictionary lookups.

An optional on-disk layer (``cache_dir``) persists both maps as pickles
keyed by content hash; a warm re-run of the same corpus then performs
zero ``build_schema`` calls, which the :class:`CacheCounters` expose for
verification.  All methods are thread-safe: the parallel pipeline shares
one cache across workers.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Callable

from repro.core.diff import TransitionDiff, diff_schemas
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace
from repro.schema.builder import build_schema
from repro.schema.model import Schema
from repro.sqlddl.ast import CreateTable
from repro.sqlddl.parser import parse_script

#: The cached functions the counters are split by.
CACHE_KINDS = ("schema", "diff", "scan")


class CacheCounters:
    """Hit/miss counters, split per cached function and per layer.

    Every count lives in a :class:`~repro.obs.metrics.MetricsRegistry`
    (``repro_cache_hits_total{kind=...}`` and friends); the classic
    attribute names (``schema_hits`` etc.) are read-only views over the
    registry, so one ``registry.snapshot()`` carries the same truth the
    pipeline stats and the ``--stats`` flag report.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = {
            kind: self.registry.counter("repro_cache_hits_total", kind=kind)
            for kind in CACHE_KINDS
        }
        self._misses = {
            kind: self.registry.counter("repro_cache_misses_total", kind=kind)
            for kind in CACHE_KINDS
        }
        self._disk_hits = {
            kind: self.registry.counter("repro_cache_disk_hits_total", kind=kind)
            for kind in ("schema", "diff")
        }

    def hit(self, kind: str, disk: bool = False) -> None:
        self._hits[kind].inc()
        if disk:
            self._disk_hits[kind].inc()

    def miss(self, kind: str) -> None:
        self._misses[kind].inc()

    # -- the classic read API, now registry-backed ------------------------

    @property
    def schema_hits(self) -> int:
        return self._hits["schema"].value

    @property
    def schema_misses(self) -> int:
        return self._misses["schema"].value

    @property
    def schema_disk_hits(self) -> int:
        """Subset of ``schema_hits`` served from disk."""
        return self._disk_hits["schema"].value

    @property
    def diff_hits(self) -> int:
        return self._hits["diff"].value

    @property
    def diff_misses(self) -> int:
        return self._misses["diff"].value

    @property
    def diff_disk_hits(self) -> int:
        return self._disk_hits["diff"].value

    @property
    def scan_hits(self) -> int:
        return self._hits["scan"].value

    @property
    def scan_misses(self) -> int:
        return self._misses["scan"].value

    @property
    def build_schema_calls(self) -> int:
        """How many times the cache actually invoked ``build_schema``."""
        return self.schema_misses

    def payload(self) -> dict:
        return {
            "schema_hits": self.schema_hits,
            "schema_misses": self.schema_misses,
            "schema_disk_hits": self.schema_disk_hits,
            "diff_hits": self.diff_hits,
            "diff_misses": self.diff_misses,
            "diff_disk_hits": self.diff_disk_hits,
            "scan_hits": self.scan_hits,
            "scan_misses": self.scan_misses,
        }


def text_key(text: str, lenient: bool = True) -> str:
    """Content hash of one DDL blob (plus the parse mode)."""
    digest = hashlib.sha256(text.encode("utf-8", errors="replace")).hexdigest()
    return digest if lenient else f"strict-{digest}"


def schema_key(schema: Schema) -> str:
    """Content hash of a parsed schema, stable across processes."""
    return hashlib.sha256(repr(schema.canonical()).encode()).hexdigest()


class SchemaCache:
    """Memoizes parsing, collection scans, and diffing by content hash.

    With ``cache_dir`` set, every miss is also persisted to disk
    (``<dir>/schemas/<key>.pkl`` and ``<dir>/diffs/<key>.pkl``) and
    future processes warm-start from there.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._schemas: dict[str, Schema] = {}
        self._scans: dict[str, bool] = {}
        self._diffs: dict[tuple[str, str], TransitionDiff] = {}
        self._schema_keys: dict[int, str] = {}  # id(schema) -> canonical key
        self.counters = CacheCounters(registry)
        self._dir = Path(cache_dir) if cache_dir is not None else None
        if self._dir is not None:
            (self._dir / "schemas").mkdir(parents=True, exist_ok=True)
            (self._dir / "diffs").mkdir(parents=True, exist_ok=True)
            (self._dir / "scans").mkdir(parents=True, exist_ok=True)

    # -- parsing ----------------------------------------------------------

    def schema_for(
        self, text: str, lenient: bool = True, dialect: str = "mysql"
    ) -> Schema:
        """The parsed schema of *text*, from memory, disk, or a parse.

        ``dialect`` routes the parse through the named frontend; the
        cache key is dialect-qualified for every non-default dialect, so
        a mixed corpus can never serve a SQLite-affinity schema to a
        MySQL task (or vice versa).  MySQL keys keep their historical
        unqualified form — warm on-disk caches stay warm.
        """
        key = text_key(text, lenient)
        if dialect and dialect != "mysql":
            key = f"{dialect}-{key}"
        with self._lock:
            schema = self._schemas.get(key)
            if schema is not None:
                self.counters.hit("schema")
                return schema
        schema = self._load_pickle("schemas", key)
        if schema is None:
            # The span makes warm runs provable from the trace alone:
            # zero `build_schema` spans == zero parses happened.
            with trace("build_schema", key=key[:12]):
                schema = build_schema(text, lenient=lenient, dialect=dialect)
            self._store_pickle("schemas", key, schema)
            disk_hit = False
        else:
            disk_hit = True
        with self._lock:
            # Another worker may have raced us; keep the first object so
            # identical blobs share one Schema instance.
            schema = self._schemas.setdefault(key, schema)
            self._schema_keys[id(schema)] = schema_key(schema)
            if disk_hit:
                self.counters.hit("schema", disk=True)
            else:
                self.counters.miss("schema")
        return schema

    def has_create_table(self, text: str) -> bool:
        """Memoized collection-stage scan: does *text* declare a table?"""
        if "create" not in text.lower():
            return False
        key = text_key(text)
        with self._lock:
            if key in self._scans:
                self.counters.hit("scan")
                return self._scans[key]
        verdict = self._load_pickle("scans", key)
        disk_hit = verdict is not None
        if not disk_hit:
            with trace("scan_create_table", key=key[:12]):
                verdict = any(isinstance(s, CreateTable) for s in parse_script(text))
            self._store_pickle("scans", key, verdict)
        with self._lock:
            self._scans[key] = verdict
            if disk_hit:
                self.counters.hit("scan")
            else:
                self.counters.miss("scan")
        return verdict

    # -- diffing ----------------------------------------------------------

    def _key_of(self, schema: Schema) -> str:
        with self._lock:
            cached = self._schema_keys.get(id(schema))
            if cached is not None:
                return cached
        key = schema_key(schema)
        with self._lock:
            # Hold a reference so the id stays valid for the memo's lifetime.
            self._schemas.setdefault(f"canon-{key}", schema)
            self._schema_keys[id(schema)] = key
        return key

    def diff_for(self, old: Schema, new: Schema) -> TransitionDiff:
        """The transition diff of two schema versions, memoized."""
        pair = (self._key_of(old), self._key_of(new))
        with self._lock:
            diff = self._diffs.get(pair)
            if diff is not None:
                self.counters.hit("diff")
                return diff
        diff = self._load_pickle("diffs", f"{pair[0][:32]}__{pair[1][:32]}")
        if diff is None:
            with trace("diff_schemas"):
                diff = diff_schemas(old, new)
            self._store_pickle("diffs", f"{pair[0][:32]}__{pair[1][:32]}", diff)
            disk_hit = False
        else:
            disk_hit = True
        with self._lock:
            self._diffs.setdefault(pair, diff)
            if disk_hit:
                self.counters.hit("diff", disk=True)
            else:
                self.counters.miss("diff")
        return diff

    @property
    def differ(self) -> Callable[[Schema, Schema], TransitionDiff]:
        """A drop-in for ``diff_schemas`` that consults this cache."""
        return self.diff_for

    @property
    def schema_factory(self) -> Callable[..., Schema]:
        """A drop-in for ``build_schema`` that consults this cache."""
        return self.schema_for

    # -- the on-disk layer ------------------------------------------------

    def _load_pickle(self, kind: str, key: str):
        if self._dir is None:
            return None
        path = self._dir / kind / f"{key}.pkl"
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None  # a torn or stale entry is just a miss

    def _store_pickle(self, kind: str, key: str, value) -> None:
        if self._dir is None:
            return
        path = self._dir / kind / f"{key}.pkl"
        # The suffix must be unique across *processes* too: the process
        # execution backend has many workers writing the same layer, and
        # thread idents alone collide between interpreters.
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic under concurrent writers
        except OSError:
            tmp.unlink(missing_ok=True)
