"""Pluggable execution backends: how one ``pipeline.run`` is scheduled.

Historically ``MeasurementPipeline.run`` hard-coded a thread pool, and
the GIL made ``--jobs 4`` *slower* than serial on this CPU-bound
workload (the recorded 0.75x "speedup").  Execution is now a strategy
object chosen by ``PipelineConfig.executor``:

- :class:`SerialBackend` — one task after another in the calling
  thread; the reference implementation every other backend must match
  byte-for-byte.
- :class:`ThreadBackend` — the legacy shared-memory thread pool; still
  useful when the cache dominates (warm re-runs) or a provider blocks
  on IO.
- :class:`ProcessBackend` — worker *processes* that sidestep the GIL;
  the default for ``jobs > 1`` under ``executor="auto"``.

The process backend's contract with the rest of the system:

- **Task shipping** — the parent resolves each task's repository via
  the provider (or the pipeline's seed map) into a picklable
  :class:`ProjectMaterial`; workers never see the provider.  A provider
  that *raises* in the parent is re-run inside ``run_project`` in the
  parent process so its failure keeps the exact serial retry semantics.
- **Deterministic partitioning** — tasks are split into contiguous
  chunks (``min(n, jobs * 4)`` of them); the assignment's content hash
  is recorded via :meth:`PipelineStats.note_partition` for every
  backend, so identical inputs provably schedule identically.
- **Cache sharing** — workers build their own :class:`SchemaCache`
  over the same ``cache_dir``; the on-disk layer (atomic pid-unique
  tmp + rename writes) is the shared medium.  In-memory counters ride
  home with each chunk and merge into the parent registry.
- **Observability relay** — each worker records spans into a private
  :class:`TraceRecorder` and metrics into a private
  :class:`MetricsRegistry`; finished chunks ship both back, the parent
  grafts spans under its in-flight ``pipeline.run`` span
  (:meth:`TraceRecorder.adopt`) and folds metric deltas in
  (:meth:`MetricsRegistry.merge_state`), so ``--trace``/``--stats``
  read the same truth regardless of backend.
- **Worker death** — a chunk whose worker dies (``BrokenProcessPool``)
  is retried in an isolated single-worker pool (a dying worker poisons
  every future sharing its pool, so innocent pool-mates get their own
  second chance); a chunk that kills its isolated pool too demotes each
  of its projects to an ``executor``-stage
  :class:`~repro.pipeline.stages.ProjectFailure` and the run completes.
  Chunks failing for non-fatal reasons (e.g. an unpicklable repository)
  fall back to inline execution in the parent.
- **Profiling** — when the run is under ``--profile``, each worker
  profiles its chunks and the parent aggregates the dumps into one
  ``<profile stem>-workers.pstats`` next to the parent profile.

Custom stage chains (``MeasurementPipeline(stages=...)``) hold live
caches and closures that cannot cross a process boundary; asking for
the process backend there falls back to threads with a warning.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.obs.profile import (
    active_profile_path,
    merge_worker_profiles,
    profiled,
    worker_profile_dir,
)
from repro.obs.trace import active_recorder, current_span_id
from repro.pipeline.stages import (
    Outcome,
    ProjectContext,
    ProjectFailure,
    ProjectTask,
)
from repro.vcs.history import FileVersion
from repro.vcs.repository import Repository

if TYPE_CHECKING:  # circular at runtime: pipeline.py imports this module
    from repro.pipeline.pipeline import MeasurementPipeline, PipelineConfig

#: The accepted ``--executor`` / ``PipelineConfig.executor`` values.
EXECUTORS = ("auto", "serial", "thread", "process")


def resolve_executor(executor: str, jobs: int) -> str:
    """Map an executor request to a concrete backend name.

    ``auto`` chooses ``process`` when ``jobs > 1`` (the workload is
    CPU-bound python, so threads lose to the GIL) and ``serial``
    otherwise.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if executor == "auto":
        return "process" if jobs > 1 else "serial"
    return executor


# -- the work units crossing the process boundary --------------------------


@dataclass(frozen=True)
class ProjectMaterial:
    """One task plus everything a worker needs to run it.

    ``versions`` is the pre-extracted usable history when the pipeline
    was seeded (ingest); ``None`` means the worker runs the ordinary
    extract stage against the shipped repository.
    """

    index: int  # position in the input task list
    task: ProjectTask
    repo: Repository | None
    versions: tuple[FileVersion, ...] | None = None


@dataclass(frozen=True)
class WorkerChunk:
    """One contiguous slice of the run, shipped to one worker call."""

    chunk_id: int
    config: "PipelineConfig"
    materials: tuple[ProjectMaterial, ...]
    profile_dir: str | None = None  # set when the parent run is profiled


@dataclass
class ChunkOutcome:
    """What a worker sends home: contexts plus observability deltas."""

    chunk_id: int
    contexts: list[tuple[int, ProjectContext]]
    metrics: list[dict]  # MetricsRegistry.dump_state()
    spans: list[dict]  # Span.payload() list


def partition(count: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``count`` tasks into contiguous ``(start, stop)`` chunks.

    Deterministic in ``(count, jobs)``: ``min(count, jobs * 4)`` chunks,
    sizes differing by at most one.  Several chunks per worker keep the
    pool busy when project costs are skewed, while contiguity preserves
    locality with the input ordering.
    """
    if count <= 0:
        return []
    pieces = max(1, min(count, max(1, jobs) * 4))
    base, extra = divmod(count, pieces)
    chunks: list[tuple[int, int]] = []
    start = 0
    for index in range(pieces):
        stop = start + base + (1 if index < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def partition_digest(
    tasks: Sequence[ProjectTask], chunks: Sequence[tuple[int, int]], backend: str
) -> str:
    """Content hash of one task-to-chunk assignment."""
    digest = hashlib.sha256(backend.encode())
    for chunk_id, (start, stop) in enumerate(chunks):
        digest.update(f"|{chunk_id}:".encode())
        for task in tasks[start:stop]:
            digest.update(f"{task.repo_name}\x00{task.ddl_path}\x00".encode())
    return digest.hexdigest()


def _note_partition(
    pipeline: "MeasurementPipeline",
    tasks: Sequence[ProjectTask],
    chunks: Sequence[tuple[int, int]],
    backend: str,
) -> None:
    pipeline.stats.note_partition(
        digest=partition_digest(tasks, chunks, backend),
        chunks=len(chunks),
        backend=backend,
    )


# -- the worker side -------------------------------------------------------


def _run_worker_chunk(chunk: WorkerChunk) -> ChunkOutcome:
    """Execute one chunk inside a worker process.

    Builds a private pipeline over the shipped materials: a fresh
    registry and cache (sharing only the on-disk ``cache_dir``), a
    seeded extract stage when version lists came along, and a private
    trace recorder whose spans ride home in the outcome.  Contexts are
    stripped of their repository/version payloads before pickling — the
    parent holds those objects already.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder, recording, reset_tracing_for_worker
    from repro.pipeline.cache import SchemaCache
    from repro.pipeline.pipeline import MeasurementPipeline

    reset_tracing_for_worker()  # drop tracing state inherited over fork
    registry = MetricsRegistry()
    cache = SchemaCache(chunk.config.cache_dir, registry=registry)
    repos: dict[str, Repository | None] = {}
    seeds: dict[str, tuple[Repository | None, list[FileVersion]]] = {}
    for material in chunk.materials:
        repos[material.task.repo_name] = material.repo
        if material.versions is not None:
            seeds[material.task.repo_name] = (material.repo, list(material.versions))
    pipeline = MeasurementPipeline(
        provider=repos.get,
        config=replace(chunk.config, jobs=1, executor="serial"),
        cache=cache,
        seeds=seeds if seeds else None,
    )
    profile_path = (
        Path(chunk.profile_dir) / f"chunk-{chunk.chunk_id}-{os.getpid()}.pstats"
        if chunk.profile_dir is not None
        else None
    )
    recorder = TraceRecorder()
    contexts: list[tuple[int, ProjectContext]] = []
    with recording(recorder), profiled(profile_path):
        for material in chunk.materials:
            ctx = pipeline.run_project(material.task)
            ctx.repo = None  # the parent reattaches its own object
            ctx.file_versions = []
            contexts.append((material.index, ctx))
    return ChunkOutcome(
        chunk_id=chunk.chunk_id,
        contexts=contexts,
        metrics=registry.dump_state(),
        spans=[span.payload() for span in recorder.spans()],
    )


# -- the backends ----------------------------------------------------------


@runtime_checkable
class ExecutionBackend(Protocol):
    """How one ``pipeline.run`` batch is scheduled."""

    name: str

    def execute(
        self, pipeline: "MeasurementPipeline", tasks: Sequence[ProjectTask]
    ) -> list[ProjectContext]:
        """Run every task, returning contexts in input order."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """One task after another in the calling thread (the reference)."""

    name = "serial"

    def execute(
        self, pipeline: "MeasurementPipeline", tasks: Sequence[ProjectTask]
    ) -> list[ProjectContext]:
        _note_partition(pipeline, tasks, [(0, len(tasks))] if tasks else [], self.name)
        return [pipeline.run_project(task) for task in tasks]


class ThreadBackend:
    """The legacy shared-memory thread pool.

    Kept for cache-bound workloads (a warm re-run spends its time in
    lock-protected dict lookups, where threads are cheap and fork is
    not) and as the fallback for custom stage chains that cannot cross
    a process boundary.
    """

    name = "thread"

    def execute(
        self, pipeline: "MeasurementPipeline", tasks: Sequence[ProjectTask]
    ) -> list[ProjectContext]:
        jobs = max(1, pipeline.config.jobs)
        _note_partition(
            pipeline, tasks, [(i, i + 1) for i in range(len(tasks))], self.name
        )
        if jobs == 1 or len(tasks) <= 1:
            return [pipeline.run_project(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=jobs) as executor:
            return list(executor.map(pipeline.run_project, tasks))


class ProcessBackend:
    """Worker processes: real CPU parallelism for the measure pipeline.

    See the module docstring for the full contract.  With ``jobs == 1``
    or a single task there is nothing to parallelize and execution is
    inlined (still recorded under this backend's partition digest).
    """

    name = "process"

    def execute(
        self, pipeline: "MeasurementPipeline", tasks: Sequence[ProjectTask]
    ) -> list[ProjectContext]:
        jobs = max(1, pipeline.config.jobs)
        chunks = partition(len(tasks), jobs)
        _note_partition(pipeline, tasks, chunks, self.name)
        if jobs == 1 or len(tasks) <= 1:
            return [pipeline.run_project(task) for task in tasks]

        materials, inline_indices = self._resolve_materials(pipeline, tasks)
        profile_dir = self._profile_dir()
        work: list[WorkerChunk] = []
        for chunk_id, (start, stop) in enumerate(chunks):
            shipped = tuple(
                materials[i]
                for i in range(start, stop)
                if materials[i] is not None
            )
            if shipped:
                work.append(
                    WorkerChunk(
                        chunk_id=chunk_id,
                        config=pipeline.config,
                        materials=shipped,
                        profile_dir=(
                            str(profile_dir) if profile_dir is not None else None
                        ),
                    )
                )

        results: dict[int, ProjectContext] = {}
        outcomes, broken, errored = self._submit_round(work, jobs)
        if broken:
            # Broken chunks retry one at a time in single-worker pools:
            # a dying worker poisons every future sharing its pool, so
            # isolation is the only way to tell the one chunk that kills
            # workers apart from its innocent pool-mates.
            still_broken: list[WorkerChunk] = []
            for chunk in broken:
                retried, dead, errored_again = self._submit_round([chunk], 1)
                outcomes.extend(retried)
                still_broken.extend(dead)
                errored.extend(errored_again)
            broken = still_broken
        for chunk in broken:
            for material in chunk.materials:
                results[material.index] = self._executor_failure(material.task)
        for chunk in errored:
            # Non-fatal chunk errors (an unpicklable repository, a torn
            # queue) run inline — the parent has everything it needs.
            for material in chunk.materials:
                results[material.index] = pipeline.run_project(material.task)
        for outcome in sorted(outcomes, key=lambda o: o.chunk_id):
            self._merge_outcome(pipeline, outcome, materials, results)
        for index in inline_indices:
            # The provider raised during resolution; run_project re-runs
            # it here so retry/failure semantics match the serial path.
            results[index] = pipeline.run_project(tasks[index])
        if profile_dir is not None:
            self._merge_profiles(profile_dir)
        return [results[index] for index in range(len(tasks))]

    # -- helpers ----------------------------------------------------------

    def _resolve_materials(
        self, pipeline: "MeasurementPipeline", tasks: Sequence[ProjectTask]
    ) -> tuple[list[ProjectMaterial | None], list[int]]:
        """Resolve every task into a picklable material in the parent.

        Returns the material list (None where the provider raised) plus
        the indices that must run inline in the parent.
        """
        seeds = pipeline.seeds
        materials: list[ProjectMaterial | None] = []
        inline: list[int] = []
        for index, task in enumerate(tasks):
            if seeds is not None:
                repo, versions = seeds.get(task.repo_name, (None, []))
                materials.append(
                    ProjectMaterial(index, task, repo, tuple(versions))
                )
                continue
            try:
                repo = pipeline.provider(task.repo_name)
            except Exception:
                materials.append(None)
                inline.append(index)
                continue
            materials.append(ProjectMaterial(index, task, repo))
        return materials, inline

    def _submit_round(
        self, work: Sequence[WorkerChunk], jobs: int
    ) -> tuple[list[ChunkOutcome], list[WorkerChunk], list[WorkerChunk]]:
        """Run one pool over *work*; split results from casualties.

        Returns ``(outcomes, broken, errored)`` where *broken* chunks
        saw their worker die (``BrokenProcessPool``) and *errored*
        chunks failed for recoverable reasons (pickling and friends).
        """
        outcomes: list[ChunkOutcome] = []
        broken: list[WorkerChunk] = []
        errored: list[WorkerChunk] = []
        if not work:
            return outcomes, broken, errored
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        try:
            with ProcessPoolExecutor(
                max_workers=jobs, mp_context=context
            ) as pool:
                futures = {}
                for chunk in work:
                    try:
                        futures[pool.submit(_run_worker_chunk, chunk)] = chunk
                    except BrokenProcessPool:
                        broken.append(chunk)
                for future in as_completed(futures):
                    chunk = futures[future]
                    try:
                        outcomes.append(future.result())
                    except BrokenProcessPool:
                        broken.append(chunk)
                    except Exception:
                        errored.append(chunk)
        except BrokenProcessPool:  # pragma: no cover - shutdown race
            pass
        return outcomes, broken, errored

    @staticmethod
    def _executor_failure(task: ProjectTask) -> ProjectContext:
        """The record a project gets when its worker died twice."""
        failure = ProjectFailure(
            project=task.repo_name,
            stage="executor",
            error="BrokenProcessPool",
            message="worker process died while running this project's chunk",
        )
        return ProjectContext(task=task, outcome=Outcome.FAILED, failure=failure)

    @staticmethod
    def _merge_outcome(
        pipeline: "MeasurementPipeline",
        outcome: ChunkOutcome,
        materials: Sequence[ProjectMaterial | None],
        results: dict[int, ProjectContext],
    ) -> None:
        """Fold one worker chunk into the parent's state."""
        pipeline.stats.registry.merge_state(outcome.metrics)
        recorder = active_recorder()
        if recorder is not None and outcome.spans:
            recorder.adopt(
                outcome.spans,
                parent_id=current_span_id(),
                thread=f"worker-{outcome.chunk_id}",
            )
        for index, ctx in outcome.contexts:
            material = materials[index]
            if material is not None:
                ctx.repo = material.repo
            results[index] = ctx

    @staticmethod
    def _profile_dir() -> Path | None:
        """Scratch directory for worker profile dumps, when profiling."""
        parent = active_profile_path()
        if parent is None:
            return None
        directory = worker_profile_dir(parent)
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    @staticmethod
    def _merge_profiles(directory: Path) -> None:
        """Aggregate worker dumps next to the parent profile, then tidy."""
        parent = active_profile_path()
        if parent is None:  # pragma: no cover - profiling raced off
            return
        dumps = sorted(directory.glob("*.pstats"))
        out = parent.with_name(parent.stem + "-workers.pstats")
        merge_worker_profiles(dumps, out)
        for dump in dumps:
            dump.unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - leftover foreign files
            pass


def resolve_backend(
    executor: str, jobs: int, custom_stages: bool = False
) -> ExecutionBackend:
    """The backend instance for one run.

    Custom stage chains hold closures and shared caches the process
    boundary cannot serialize; the process backend degrades to threads
    there (with a warning) rather than failing mid-corpus.
    """
    name = resolve_executor(executor, jobs)
    if name == "process" and custom_stages:
        warnings.warn(
            "custom stage chains cannot cross the process boundary; "
            "falling back to the thread backend",
            RuntimeWarning,
            stacklevel=3,
        )
        name = "thread"
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend()
    return ProcessBackend()
