"""Logical schema model: tables, attributes, and schema construction."""

from repro.schema.model import Attribute, Schema, SchemaSize, Table
from repro.schema.builder import SchemaBuildError, build_schema, apply_statements
from repro.schema.writer import render_column, render_create_table, render_schema

__all__ = [
    "Attribute",
    "Schema",
    "SchemaBuildError",
    "SchemaSize",
    "Table",
    "apply_statements",
    "build_schema",
    "render_column",
    "render_create_table",
    "render_schema",
]
