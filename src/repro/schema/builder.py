"""Build a logical :class:`~repro.schema.model.Schema` from parsed DDL.

This is the bridge between the SQL front end and the evolution study:
it replays a script's ``CREATE TABLE`` / ``ALTER TABLE`` / ``DROP
TABLE`` / ``RENAME TABLE`` statements against an (initially empty)
schema and returns the resulting logical snapshot.  Non-DDL statements
and sub-logical details (indexes, engines, comments) are counted but do
not affect the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.model import Attribute, Schema, Table
from repro.sqlddl.ast import (
    AlterAction,
    AlterKind,
    AlterTable,
    ColumnDef,
    ConstraintKind,
    CreateTable,
    DropTable,
    IgnoredStatement,
    RenameTable,
    Statement,
)
from repro.sqlddl.parser import parse_script


class SchemaBuildError(Exception):
    """A DDL statement could not be applied to the running schema."""


@dataclass
class BuildReport:
    """What happened while replaying a script."""

    created: int = 0
    dropped: int = 0
    altered: int = 0
    renamed: int = 0
    ignored: int = 0
    ignored_verbs: dict[str, int] = field(default_factory=dict)

    def note_ignored(self, verb: str) -> None:
        self.ignored += 1
        self.ignored_verbs[verb] = self.ignored_verbs.get(verb, 0) + 1


def _attribute_from_column(column: ColumnDef) -> Attribute:
    return Attribute(name=column.name, data_type=column.data_type, nullable=column.nullable)


def _table_from_create(create: CreateTable, lenient: bool = True) -> Table:
    attributes: list[Attribute] = []
    seen: set[str] = set()
    for column in create.columns:
        key = column.name.lower()
        if key in seen:
            if lenient:
                continue  # invalid SQL in the wild: keep first occurrence
            raise SchemaBuildError(
                f"duplicate column {column.name!r} in CREATE TABLE {create.name!r}"
            )
        seen.add(key)
        attributes.append(_attribute_from_column(column))
    return Table(
        name=create.name, attributes=tuple(attributes), primary_key=create.primary_key
    )


def _apply_alter(schema: Schema, alter: AlterTable, lenient: bool) -> Schema:
    table = schema.table(alter.name)
    if table is None:
        if lenient:
            return schema
        raise SchemaBuildError(f"ALTER TABLE on unknown table {alter.name!r}")
    for action in alter.actions:
        result = _apply_alter_action(schema, table, action, lenient)
        if result is None:
            continue
        schema, table = result
        if table is None:  # table was renamed away; remaining actions no-op
            break
    return schema


def _apply_alter_action(
    schema: Schema, table: Table, action: AlterAction, lenient: bool
) -> tuple[Schema, Table | None] | None:
    kind = action.kind
    if kind is AlterKind.ADD_COLUMN and action.column is not None:
        if table.attribute(action.column.name) is not None:
            if lenient:
                return None
            raise SchemaBuildError(
                f"column {action.column.name!r} already exists in {table.name!r}"
            )
        new_attrs = table.attributes + (_attribute_from_column(action.column),)
        pk = table.primary_key
        if action.column.is_primary_key:
            pk = pk + (action.column.name,)
        new_table = Table(table.name, new_attrs, pk)
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.DROP_COLUMN and action.old_name is not None:
        if table.attribute(action.old_name) is None:
            if lenient:
                return None
            raise SchemaBuildError(f"unknown column {action.old_name!r} in {table.name!r}")
        lowered = action.old_name.lower()
        new_attrs = tuple(a for a in table.attributes if a.key != lowered)
        pk = tuple(c for c in table.primary_key if c.lower() != lowered)
        new_table = Table(table.name, new_attrs, pk)
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.MODIFY_COLUMN and action.column is not None:
        existing = table.attribute(action.column.name)
        if existing is None:
            if lenient:
                return None
            raise SchemaBuildError(f"unknown column {action.column.name!r} in {table.name!r}")
        new_attrs = tuple(
            _attribute_from_column(action.column) if a.key == existing.key else a
            for a in table.attributes
        )
        new_table = Table(table.name, new_attrs, table.primary_key)
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.CHANGE_COLUMN and action.column is not None and action.old_name:
        existing = table.attribute(action.old_name)
        if existing is None:
            if lenient:
                return None
            raise SchemaBuildError(f"unknown column {action.old_name!r} in {table.name!r}")
        new_attrs = tuple(
            _attribute_from_column(action.column) if a.key == existing.key else a
            for a in table.attributes
        )
        pk = tuple(
            action.column.name if c.lower() == existing.key else c for c in table.primary_key
        )
        new_table = Table(table.name, new_attrs, pk)
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.RENAME_COLUMN and action.old_name and action.raw:
        existing = table.attribute(action.old_name)
        if existing is None:
            if lenient:
                return None
            raise SchemaBuildError(f"unknown column {action.old_name!r} in {table.name!r}")
        renamed = Attribute(action.raw, existing.data_type, existing.nullable)
        new_attrs = tuple(renamed if a.key == existing.key else a for a in table.attributes)
        pk = tuple(action.raw if c.lower() == existing.key else c for c in table.primary_key)
        new_table = Table(table.name, new_attrs, pk)
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.ADD_CONSTRAINT and action.constraint is not None:
        if action.constraint.kind is ConstraintKind.PRIMARY_KEY:
            new_table = Table(table.name, table.attributes, action.constraint.columns)
            return schema.replace_table(new_table), new_table
        return None  # indexes/uniques/FKs are sub-logical here
    if kind is AlterKind.DROP_PRIMARY_KEY:
        new_table = Table(table.name, table.attributes, ())
        return schema.replace_table(new_table), new_table
    if kind is AlterKind.RENAME_TABLE and action.raw:
        renamed = Table(action.raw, table.attributes, table.primary_key)
        return schema.without_table(table.name).with_table(renamed), None
    return None  # OTHER / DROP_CONSTRAINT: no logical effect


def apply_statements(
    schema: Schema,
    statements: list[Statement],
    lenient: bool = True,
    report: BuildReport | None = None,
) -> Schema:
    """Replay *statements* on *schema*, returning the new snapshot.

    With ``lenient=True`` (the default, matching how a mining tool must
    treat arbitrary repository content) re-creates of an existing table
    replace it, drops of a missing table are no-ops, and malformed
    alters are skipped.  With ``lenient=False`` those raise
    :class:`SchemaBuildError`.
    """
    for statement in statements:
        if isinstance(statement, CreateTable):
            table = _table_from_create(statement, lenient)
            if schema.table(table.name) is not None:
                if statement.if_not_exists:
                    continue
                if not lenient:
                    raise SchemaBuildError(f"table {table.name!r} already exists")
                schema = schema.replace_table(table)
            else:
                schema = schema.with_table(table)
            if report:
                report.created += 1
        elif isinstance(statement, DropTable):
            for name in statement.names:
                if schema.table(name) is None:
                    if statement.if_exists or lenient:
                        continue
                    raise SchemaBuildError(f"DROP of unknown table {name!r}")
                schema = schema.without_table(name)
                if report:
                    report.dropped += 1
        elif isinstance(statement, AlterTable):
            schema = _apply_alter(schema, statement, lenient)
            if report:
                report.altered += 1
        elif isinstance(statement, RenameTable):
            for old, new in statement.renames:
                table = schema.table(old)
                if table is None:
                    if lenient:
                        continue
                    raise SchemaBuildError(f"RENAME of unknown table {old!r}")
                renamed = Table(new, table.attributes, table.primary_key)
                schema = schema.without_table(old).with_table(renamed)
                if report:
                    report.renamed += 1
        elif isinstance(statement, IgnoredStatement):
            if report:
                report.note_ignored(statement.verb)
    return schema


def build_schema(
    text: str,
    lenient: bool = True,
    report: BuildReport | None = None,
    dialect: str = "mysql",
) -> Schema:
    """Parse *text* and build the logical schema it declares.

    ``dialect`` selects the frontend (see :mod:`repro.sqlddl.dialects`);
    the default is the historical direct ``parse_script`` path.
    """
    if dialect and dialect != "mysql":
        from repro.sqlddl.dialects import parse_script_for

        statements = parse_script_for(text, dialect)
    else:
        statements = parse_script(text)
    return apply_statements(Schema(), statements, lenient=lenient, report=report)
