"""Render a logical schema back to canonical MySQL DDL text.

Used by the synthetic-corpus realizer: a generated project's versions
are materialized as *actual SQL files*, so that the entire downstream
pipeline (lex → parse → build → diff) runs on real text, exactly as it
would on a cloned repository.  Round-trip stability
(``build_schema(render_schema(s)) == s``) is property-tested.
"""

from __future__ import annotations

from repro.schema.model import Attribute, Schema, Table
from repro.sqlddl.ast import ColumnDef, CreateTable, ConstraintKind


def render_column(attribute: Attribute) -> str:
    """Render one column definition line (without trailing comma)."""
    parts = [f"`{attribute.name}`", attribute.data_type.render()]
    if not attribute.nullable:
        parts.append("NOT NULL")
    return " ".join(parts)


def render_create_table(table: Table, engine: str = "InnoDB") -> str:
    """Render a full CREATE TABLE statement for *table*."""
    lines = [f"CREATE TABLE `{table.name}` ("]
    body = [f"  {render_column(attribute)}" for attribute in table.attributes]
    if table.primary_key:
        quoted = ", ".join(f"`{c}`" for c in table.primary_key)
        body.append(f"  PRIMARY KEY ({quoted})")
    lines.append(",\n".join(body))
    lines.append(f") ENGINE={engine} DEFAULT CHARSET=utf8;")
    return "\n".join(lines)


def render_schema(schema: Schema, header: str | None = None, engine: str = "InnoDB") -> str:
    """Render a whole schema as one ``.sql`` file."""
    parts: list[str] = []
    if header:
        parts.append("\n".join(f"-- {line}" for line in header.splitlines()))
        parts.append("")
    for table in schema.tables:
        parts.append(render_create_table(table, engine=engine))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n" if parts else ""


def render_create_statement(create: CreateTable) -> str:
    """Render a parsed CREATE TABLE AST node back to SQL (diagnostics)."""
    lines = [f"CREATE TABLE `{create.name}` ("]
    body = []
    for column in create.columns:
        parts = [f"  `{column.name}`", column.data_type.render()]
        if not column.nullable:
            parts.append("NOT NULL")
        if column.auto_increment:
            parts.append("AUTO_INCREMENT")
        if column.default is not None:
            parts.append(f"DEFAULT {column.default}")
        body.append(" ".join(parts))
    for constraint in create.constraints:
        if constraint.kind is ConstraintKind.PRIMARY_KEY:
            quoted = ", ".join(f"`{c}`" for c in constraint.columns)
            body.append(f"  PRIMARY KEY ({quoted})")
    lines.append(",\n".join(body))
    lines.append(");")
    return "\n".join(lines)
