"""Immutable logical schema model.

The study observes schemata at the *logical level*: a schema is a set of
tables, each table an ordered collection of attributes with data types,
plus the primary key.  Indexes, storage engines, charsets, comments and
data rows are deliberately out of model — changes to them are what the
paper calls *non-active* commits.

All classes are frozen dataclasses: a schema version never mutates, and
transitions are computed by diffing two versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlddl.types import DataType


@dataclass(frozen=True, slots=True)
class Attribute:
    """One attribute (column) of a table, as the study's unit of change."""

    name: str
    data_type: DataType
    nullable: bool = True

    @property
    def key(self) -> str:
        """Case-insensitive identity used for cross-version matching."""
        return self.name.lower()


@dataclass(frozen=True)
class Table:
    """A table: named, with ordered attributes and a primary key."""

    name: str
    attributes: tuple[Attribute, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.key in seen:
                raise ValueError(
                    f"duplicate attribute {attribute.name!r} in table {self.name!r}"
                )
            seen.add(attribute.key)

    @property
    def key(self) -> str:
        """Case-insensitive identity used for cross-version matching."""
        return self.name.lower()

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def pk_key(self) -> tuple[str, ...]:
        """Primary key as a canonical (lowercased, ordered) tuple."""
        return tuple(sorted(c.lower() for c in self.primary_key))

    def attribute(self, name: str) -> Attribute | None:
        """Look up an attribute by case-insensitive name."""
        lowered = name.lower()
        for candidate in self.attributes:
            if candidate.key == lowered:
                return candidate
        return None

    def __len__(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True, slots=True)
class SchemaSize:
    """The (tables, attributes) size pair reported per version."""

    tables: int
    attributes: int


@dataclass(frozen=True)
class Schema:
    """A full schema version: an ordered set of tables.

    Table order is preserved (it reflects file order) but identity is by
    case-insensitive name; construction rejects duplicates.
    """

    tables: tuple[Table, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for table in self.tables:
            if table.key in seen:
                raise ValueError(f"duplicate table {table.name!r} in schema")
            seen.add(table.key)

    @property
    def size(self) -> SchemaSize:
        return SchemaSize(
            tables=len(self.tables),
            attributes=sum(len(t) for t in self.tables),
        )

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def table(self, name: str) -> Table | None:
        """Look up a table by case-insensitive name."""
        lowered = name.lower()
        for candidate in self.tables:
            if candidate.key == lowered:
                return candidate
        return None

    def by_key(self) -> dict[str, Table]:
        """Mapping of lowercase table name -> Table."""
        return {t.key: t for t in self.tables}

    def with_table(self, table: Table) -> "Schema":
        """Return a new schema with *table* appended (must not exist)."""
        if self.table(table.name) is not None:
            raise ValueError(f"table {table.name!r} already exists")
        return Schema(self.tables + (table,))

    def replace_table(self, table: Table) -> "Schema":
        """Return a new schema with the same-named table replaced."""
        replaced = False
        tables: list[Table] = []
        for candidate in self.tables:
            if candidate.key == table.key:
                tables.append(table)
                replaced = True
            else:
                tables.append(candidate)
        if not replaced:
            raise ValueError(f"table {table.name!r} does not exist")
        return Schema(tuple(tables))

    def without_table(self, name: str) -> "Schema":
        """Return a new schema with the named table removed."""
        lowered = name.lower()
        remaining = tuple(t for t in self.tables if t.key != lowered)
        if len(remaining) == len(self.tables):
            raise ValueError(f"table {name!r} does not exist")
        return Schema(remaining)

    def canonical(self) -> tuple:
        """Order-independent normal form.

        Two schemata with the same tables, attributes, types and keys —
        regardless of declaration order — have equal canonical forms.
        Used to compare schemata produced by different routes (e.g. a
        parsed file vs an applied SMO script).
        """
        tables = []
        for table in sorted(self.tables, key=lambda t: t.key):
            attributes = tuple(
                sorted(
                    (a.key, a.data_type, a.nullable) for a in table.attributes
                )
            )
            tables.append((table.key, attributes, table.pk_key))
        return tuple(tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.table(name) is not None
