"""Fixed-width plain-text table formatting."""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        if abs(value) < 0.001 and value != 0:
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_first_left: bool = True,
) -> str:
    """Render rows as a fixed-width table with a header rule.

    Floats print with two decimals (scientific below 1e-3); integers and
    float-integers print bare.
    """
    text_rows = [[_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(f"row {row} does not match {columns} headers")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0 and align_first_left:
                parts.append(f"{cell:<{widths[index]}}")
            else:
                parts.append(f"{cell:>{widths[index]}}")
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
