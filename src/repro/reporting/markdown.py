"""Generate a Markdown experiments report from a measured corpus.

Produces the machine-generated counterpart of EXPERIMENTS.md: every
figure/table of the paper regenerated from the given funnel + analysis
and rendered as Markdown tables (with the paper's published values in
the comparison columns where the suite knows them).
"""

from __future__ import annotations

from repro.core.analysis import CorpusAnalysis
from repro.core.taxa import NONFROZEN_TAXA, TAXA_ORDER
from repro.mining.funnel import FunnelReport
from repro.reporting.experiments import (
    fig11_cells,
    fig12_rows,
    fig13_report,
    overall_tests,
    rq_summary,
    table1_populations,
)
from repro.stats.descriptive import quartiles

_PAPER_FUNNEL = {
    "Lib-io dataset (single DDL file identified)": 365,
    "removed: zero-version extraction": 14,
    "removed: empty / no CREATE TABLE": 24,
    "cloned & usable repositories": 327,
    "rigid (single schema version)": 132,
    "Schema_Evo_2019 (studied)": 195,
}

_PAPER_POPULATIONS = {
    "Frozen": 34, "AlmFrozen": 65, "FS+Frozen": 25,
    "Moderate": 29, "FS+Low": 20, "Active": 22,
}


def _table(headers: list[str], rows: list[list[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_experiments_markdown(report: FunnelReport, analysis: CorpusAnalysis) -> str:
    """The full generated report, ready to write next to the CSV export."""
    sections: list[str] = ["# Experiments report (generated)"]

    rows = []
    for stage, count in report.stage_rows():
        rows.append([stage, _PAPER_FUNNEL.get(stage, "-"), count])
    sections.append("## Collection funnel\n\n" + _table(["stage", "paper", "measured"], rows))

    populations = table1_populations(analysis)
    rows = [
        [taxon.short, _PAPER_POPULATIONS[taxon.short], count]
        for taxon, count in populations.items()
    ]
    sections.append("## Taxa populations\n\n" + _table(["taxon", "paper", "measured"], rows))

    rows = []
    for measure in ("total_activity", "active_commits", "sup_months"):
        for taxon in TAXA_ORDER:
            profile = analysis.profiles.get(taxon)
            if profile is None or measure not in profile.measures:
                continue
            summary = profile.measures[measure]
            rows.append(
                [
                    f"{measure} / {taxon.short}",
                    summary.minimum,
                    summary.median,
                    summary.maximum,
                    round(summary.average, 2),
                ]
            )
    sections.append(
        "## Key measures per taxon\n\n"
        + _table(["measure / taxon", "min", "median", "max", "avg"], rows)
    )

    rows = []
    for measure in ("active_commits", "total_activity"):
        for taxon in NONFROZEN_TAXA:
            q = quartiles(analysis.values(taxon, measure))
            rows.append([f"{measure} / {taxon.short}", *q.as_row()])
    sections.append(
        "## Quartiles (Fig 12)\n\n"
        + _table(["vector", "min", "Q1", "Q2", "Q3", "max"], rows)
    )

    cells = fig11_cells(analysis)
    rows = []
    for (row_taxon, col_taxon), p in sorted(cells.items(), key=lambda kv: kv[1]):
        measure = "active commits" if _order(row_taxon) > _order(col_taxon) else "activity"
        rows.append([f"{row_taxon.short} vs {col_taxon.short}", measure, f"{p:.3g}"])
    sections.append(
        "## Pairwise Kruskal-Wallis (Fig 11)\n\n"
        + _table(["pair", "measure", "p-value"], rows)
    )

    tests = overall_tests(analysis)
    rows = [
        ["KW chi2 (activity)", 178.22, round(tests.kw_activity.statistic, 2)],
        ["KW chi2 (active commits)", 175.27, round(tests.kw_active_commits.statistic, 2)],
        ["KW df", 5, tests.kw_activity.df],
        ["Shapiro-Wilk W", 0.24386, round(tests.shapiro_activity.w, 5)],
    ]
    sections.append("## Overall tests (Sec V)\n\n" + _table(["statistic", "paper", "measured"], rows))

    summary = rq_summary(analysis)
    rows = [[key, f"{value:.1%}"] for key, value in summary.items()]
    sections.append("## RQ percentages\n\n" + _table(["share", "measured"], rows))

    plot, _ = fig13_report(analysis)
    rows = [
        [
            box_label(box),
            f"({box.x.q1:g}, {box.y.q1:g})",
            f"({box.x.q3:g}, {box.y.q3:g})",
            round(box.area, 1),
        ]
        for box in plot.boxes
    ]
    sections.append(
        "## Double box plot geometry (Fig 13)\n\n"
        + _table(["taxon", "(Q1 activity, Q1 commits)", "(Q3 activity, Q3 commits)", "surface"], rows)
    )

    return "\n\n".join(sections) + "\n"


def _order(taxon) -> int:
    return NONFROZEN_TAXA.index(taxon)


def box_label(box) -> str:
    label = box.label
    return getattr(label, "short", str(label))
