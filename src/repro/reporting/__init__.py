"""Reporting: fixed-width tables and the per-figure experiment harness."""

from repro.reporting.tables import format_table
from repro.reporting.markdown import render_experiments_markdown
from repro.reporting.experiments import (
    ExperimentSuite,
    fig4_rows,
    fig10_report,
    fig11_cells,
    fig11_effect_sizes,
    fig12_rows,
    fig13_report,
    funnel_text,
    overall_tests,
    rq_summary,
    table1_populations,
)

__all__ = [
    "ExperimentSuite",
    "fig4_rows",
    "fig10_report",
    "fig11_cells",
    "fig11_effect_sizes",
    "fig12_rows",
    "fig13_report",
    "format_table",
    "funnel_text",
    "overall_tests",
    "render_experiments_markdown",
    "rq_summary",
    "table1_populations",
]
