"""Per-figure experiment harness.

Each function regenerates the rows/series of one paper artifact from a
measured corpus; :class:`ExperimentSuite` bundles them and renders full
text reports.  The benchmarks call these functions and print the output
next to the paper's published values (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import FIG4_MEASURES, CorpusAnalysis
from repro.core.taxa import NONFROZEN_TAXA, TAXA_ORDER, Taxon
from repro.mining.funnel import FunnelReport
from repro.reporting.tables import format_table
from repro.stats.boxplot import DoubleBoxPlot, double_box_plot
from repro.stats.descriptive import quartiles
from repro.stats.kruskal import KruskalResult, kruskal_wallis
from repro.stats.normality import ShapiroResult, shapiro_wilk
from repro.stats.pairwise import fig11_matrix
from repro.viz.ascii import box_plot_sketch, scatter_chart
from repro.viz.series import ScatterPoint, scatter_points

_MEASURE_LABELS = {
    "sup_months": "Sch. Upd. Period (months)",
    "total_activity": "TotalActivity",
    "n_commits": "#Commits",
    "active_commits": "#Active Commits",
    "reeds": "#Reeds",
    "turf_commits": "Turf commits",
    "table_insertions": "Table Insertions",
    "table_deletions": "Table Deletions",
    "tables_at_start": "#Tables@Start",
    "tables_at_end": "#Tables@End",
}


def table1_populations(analysis: CorpusAnalysis) -> dict[Taxon, int]:
    """Taxon populations (the "Count" row of Fig 4 / Table I)."""
    return {taxon: analysis.population(taxon) for taxon in TAXA_ORDER}


def fig4_rows(analysis: CorpusAnalysis) -> list[list[object]]:
    """The Fig 4 table: one row per (measure, statistic) per taxon."""
    rows: list[list[object]] = []
    counts: list[object] = ["Count"]
    for taxon in TAXA_ORDER:
        counts.append(analysis.population(taxon))
    rows.append(counts)
    for measure in FIG4_MEASURES:
        for stat in ("min", "med", "max", "avg"):
            row: list[object] = [f"{_MEASURE_LABELS[measure]} [{stat}]"]
            for taxon in TAXA_ORDER:
                profile = analysis.profiles.get(taxon)
                summary = profile.measures.get(measure) if profile else None
                if summary is None:
                    row.append("-")
                else:
                    value = {
                        "min": summary.minimum,
                        "med": summary.median,
                        "max": summary.maximum,
                        "avg": summary.average,
                    }[stat]
                    row.append(value)
            rows.append(row)
    return rows


def fig10_report(analysis: CorpusAnalysis) -> tuple[list[ScatterPoint], str]:
    """Fig 10: the scatter points and a rendered chart."""
    projects = [p for profile in analysis.profiles.values() for p in profile.projects]
    points = scatter_points(projects, analysis.assignments)
    return points, scatter_chart(points)


def fig11_cells(analysis: CorpusAnalysis) -> dict[tuple[Taxon, Taxon], float]:
    """Fig 11: the dual-triangle pairwise Kruskal-Wallis p-values."""
    active = {t: analysis.values(t, "active_commits") for t in NONFROZEN_TAXA}
    activity = {t: analysis.values(t, "total_activity") for t in NONFROZEN_TAXA}
    return fig11_matrix(active, activity)


def fig11_effect_sizes(analysis: CorpusAnalysis) -> dict[tuple[Taxon, Taxon], object]:
    """Cliff's delta per taxa pair, same dual-triangle layout as Fig 11
    (lower-left: active commits, upper-right: total activity)."""
    from repro.stats.effectsize import cliffs_delta

    cells: dict[tuple[Taxon, Taxon], object] = {}
    for i, row in enumerate(NONFROZEN_TAXA):
        for j, col in enumerate(NONFROZEN_TAXA):
            if i == j:
                continue
            measure = "active_commits" if i > j else "total_activity"
            cells[(row, col)] = cliffs_delta(
                analysis.values(row, measure), analysis.values(col, measure)
            )
    return cells


def fig12_rows(analysis: CorpusAnalysis) -> dict[str, list[list[object]]]:
    """Fig 12: quartiles of activity and active commits per taxon."""
    out: dict[str, list[list[object]]] = {}
    for measure in ("active_commits", "total_activity"):
        rows: list[list[object]] = []
        summaries = {
            taxon: quartiles(analysis.values(taxon, measure)) for taxon in NONFROZEN_TAXA
        }
        for stat in ("minimum", "q1", "q2", "q3", "maximum"):
            label = {"minimum": "MIN", "q1": "Q1", "q2": "Q2", "q3": "Q3", "maximum": "MAX"}[stat]
            row: list[object] = [label]
            for taxon in NONFROZEN_TAXA:
                row.append(getattr(summaries[taxon], stat))
            rows.append(row)
        out[measure] = rows
    return out


def fig13_report(analysis: CorpusAnalysis) -> tuple[DoubleBoxPlot, str]:
    """Fig 13: double box plot geometry and its text sketch."""
    activity = {t: analysis.values(t, "total_activity") for t in NONFROZEN_TAXA}
    active = {t: analysis.values(t, "active_commits") for t in NONFROZEN_TAXA}
    plot = double_box_plot(activity, active)
    return plot, box_plot_sketch(plot)


@dataclass(frozen=True)
class OverallTests:
    """The Sec V corpus-wide statistics."""

    kw_activity: KruskalResult
    kw_active_commits: KruskalResult
    shapiro_activity: ShapiroResult


def overall_tests(analysis: CorpusAnalysis, include_frozen: bool = True) -> OverallTests:
    """Overall Kruskal-Wallis and Shapiro-Wilk on total activity (Sec V).

    The paper's prose excludes the totally frozen taxon, yet reports
    df = 5 — which only arises with six groups, i.e. Frozen included.
    We default to six groups to match the published degrees of freedom;
    pass ``include_frozen=False`` for the five-taxon variant (df = 4).
    """
    taxa = TAXA_ORDER if include_frozen else NONFROZEN_TAXA
    activity_groups = [analysis.values(t, "total_activity") for t in taxa]
    commit_groups = [analysis.values(t, "active_commits") for t in taxa]
    all_activity = [v for group in activity_groups for v in group]
    return OverallTests(
        kw_activity=kruskal_wallis(*activity_groups),
        kw_active_commits=kruskal_wallis(*commit_groups),
        shapiro_activity=shapiro_wilk(all_activity),
    )


def funnel_text(report: FunnelReport) -> str:
    """E1: the collection funnel as a table."""
    rows = [[stage, count] for stage, count in report.stage_rows()]
    return format_table(["stage", "count"], rows, title="Collection funnel (Sec III.A)")


def dialect_comparison_rows(profiles: dict[str, dict]) -> list[list[object]]:
    """Cross-dialect profile rows: one column per dialect, side by side.

    Input is the mergeable shape of
    :meth:`~repro.store.CorpusStore.dialect_profiles` (raw sums and
    counts, never pre-averaged), so single-store and sharded corpora
    render identical tables.
    """
    dialects = sorted(profiles)
    rows: list[list[object]] = []

    def add(label: str, value) -> None:
        rows.append([label] + [value(profiles[d]) for d in dialects])

    def ratio(num: float, den: float) -> str:
        return f"{num / den:.2f}" if den else "-"

    add("projects", lambda p: p["projects"])
    add("studied", lambda p: p["studied"]["count"])
    add(
        "avg sup months",
        lambda p: ratio(
            p["studied"]["sup_months_sum"], p["studied"]["sup_months_count"]
        ),
    )
    add(
        "activity / studied",
        lambda p: ratio(p["studied"]["total_activity"], p["studied"]["count"]),
    )
    add("heartbeat rows", lambda p: p["heartbeat"]["rows"])
    add(
        "heartbeat duty cycle",
        lambda p: ratio(p["heartbeat"]["active"], p["heartbeat"]["rows"]),
    )
    add(
        "activity / transition",
        lambda p: ratio(p["heartbeat"]["activity_sum"], p["heartbeat"]["rows"]),
    )
    for taxon in TAXA_ORDER:
        add(
            f"taxa share {taxon.short}",
            lambda p, t=taxon: ratio(
                p["taxa"].get(t.value, 0), p["studied"]["count"]
            ),
        )
    return rows


def render_dialect_comparison(profiles: dict[str, dict]) -> str:
    """The cross-dialect comparison table (heartbeat and taxa side by
    side), or an empty string for a single-dialect corpus — the default
    mysql-only report stays byte-identical."""
    if len(profiles) < 2:
        return ""
    headers = ["profile"] + sorted(profiles)
    return format_table(
        headers,
        dialect_comparison_rows(profiles),
        title="Cross-dialect comparison: evolution profiles per frontend",
    )


def rq_summary(analysis: CorpusAnalysis) -> dict[str, float]:
    """The headline percentages of RQ1/RQ2 (Sec VI)."""
    summary = {
        "history_less_share": analysis.share_of_cloned(Taxon.HISTORY_LESS),
        "frozen_share": analysis.share_of_cloned(Taxon.FROZEN),
        "almost_frozen_share": analysis.share_of_cloned(Taxon.ALMOST_FROZEN),
        "rigidity_share": analysis.rigidity_share(),
        "low_heartbeat_share": analysis.low_heartbeat_share(),
    }
    for taxon in TAXA_ORDER:
        summary[f"studied_share_{taxon.short}"] = analysis.share_of_studied(taxon)
    return summary


class ExperimentSuite:
    """Bundle of every experiment over one funnel run."""

    def __init__(
        self,
        report: FunnelReport,
        analysis: CorpusAnalysis,
        dialect_profiles: dict[str, dict] | None = None,
    ) -> None:
        self.report = report
        self.analysis = analysis
        self.dialect_profiles = dialect_profiles or {}

    @classmethod
    def from_store(cls, store) -> "ExperimentSuite":
        """Build the suite from an ingested
        :class:`~repro.store.CorpusStore` instead of a fresh funnel run
        — every figure and table renders without re-measuring.  Store
        backing also unlocks the cross-dialect comparison (the funnel
        path has no dialect column to group by)."""
        from repro.core.analysis import analyze_corpus

        report = store.funnel_report()
        analysis = analyze_corpus(report.studied + report.rigid)
        return cls(report, analysis, dialect_profiles=store.dialect_profiles())

    def render_fig4(self) -> str:
        headers = ["measure"] + [t.short for t in TAXA_ORDER]
        return format_table(headers, fig4_rows(self.analysis), title="Fig 4: measurements per taxon")

    def render_fig11(self) -> str:
        cells = fig11_cells(self.analysis)
        headers = [""] + [t.short for t in NONFROZEN_TAXA]
        rows = []
        for row_taxon in NONFROZEN_TAXA:
            row: list[object] = [row_taxon.short]
            for col_taxon in NONFROZEN_TAXA:
                if row_taxon is col_taxon:
                    row.append("")
                else:
                    row.append(cells[(row_taxon, col_taxon)])
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Fig 11: pairwise KW p-values (lower-left: active commits, upper-right: activity)",
        )

    def render_fig12(self) -> str:
        parts = ["Fig 12: quartiles of activity and active commits per taxon"]
        for measure, rows in fig12_rows(self.analysis).items():
            headers = [measure] + [t.short for t in NONFROZEN_TAXA]
            parts.append(format_table(headers, rows))
        return "\n\n".join(parts)

    def render_all(self) -> str:
        tests = overall_tests(self.analysis)
        _, scatter = fig10_report(self.analysis)
        _, boxes = fig13_report(self.analysis)
        rq = rq_summary(self.analysis)
        rq_rows = [[key, f"{value:.1%}"] for key, value in rq.items()]
        from repro.viz.tree import classification_tree_text

        sections = [
            funnel_text(self.report),
            "Fig 3: classification tree\n" + classification_tree_text(self.analysis.rules),
            self.render_fig4(),
            "Fig 10:\n" + scatter,
            self.render_fig11(),
            self.render_fig12(),
            "Fig 13:\n" + boxes,
            f"Overall KW (activity): {tests.kw_activity}",
            f"Overall KW (active commits): {tests.kw_active_commits}",
            f"Shapiro-Wilk (activity): {tests.shapiro_activity}",
            format_table(["research question share", "value"], rq_rows),
        ]
        # Only a mixed corpus gets the comparison section, so every
        # single-dialect (default) report renders byte-identically.
        comparison = render_dialect_comparison(self.dialect_profiles)
        if comparison:
            sections.append(comparison)
        return "\n\n".join(sections)
