"""The corpus serving layer (``repro serve``).

A stdlib ``ThreadingHTTPServer`` over one :class:`~repro.store.CorpusStore`.
The versioned ``/v1`` surface is the current API, driven by the
declarative route table in :mod:`repro.serve.routes`:

=======================================  ======================================
``GET /v1/projects``                     paginated projects; ``taxon=``,
                                         ``outcome=``, ``min_<metric>=`` /
                                         ``max_<metric>=``, ``cursor=`` or
                                         ``offset=``/``limit=``; payload
                                         carries ``next``/``total``
``GET /v1/projects/{id}``                one project + its version ledger
``GET /v1/projects/{id}/heartbeat``      the per-commit heartbeat rows
``GET/POST /v1/projects/{id}/advise``    the migration advisor: POST a
                                         proposed DDL change for a versioned
                                         up/down script + atypicality
                                         findings (idempotent via
                                         ``Idempotency-Key``); GET the
                                         persisted advice ledger
``GET /v1/taxa``                         per-taxon populations and shares
``GET /v1/stats``                        corpus aggregates + ``api`` block
``GET /v1/failures``                     stored ProjectFailure records with
                                         retry-attempt counts (paginated)
``GET /v1/openapi.json``                 OpenAPI 3.1, generated from the
                                         route table
``GET /v1/metrics``                      the metrics registry: JSON, or
                                         Prometheus text via ``Accept``
=======================================  ======================================

v1 errors use the structured envelope ``{"error": {"code", "message",
"detail"}}``; every /v1 response carries ``X-Api-Version``.  Unknown
methods on known paths answer a uniform 405 with ``Allow``; ``OPTIONS``
answers 204 + ``Allow``.  The legacy unversioned routes still answer
with their original shapes but carry ``Deprecation: true`` and a
``Link: rel="successor-version"`` header pointing at their ``/v1``
successor.

``{id}`` is a numeric store id or a URL-encoded project name.  All
cacheable GET responses carry a deterministic ``ETag`` derived from the
store's content hash; ``If-None-Match`` revalidation answers ``304``.
Hot ``/v1`` GETs come from an LRU :class:`ResponseCache` keyed on
``(path, canonical query)`` and validated against the store's content
hash, so repeat queries of an unchanged store skip the store read and
the JSON render entirely (hit/miss counters on ``/metrics``).
Requests run bounded by a timeout behind a store-level circuit breaker;
under a store outage GETs degrade to the last ETag-consistent snapshot
(``Warning``/``Retry-After``) or an honest 503, while writes always get
the honest 503 (never stale advice) — and never a hang.
"""

from repro.serve.cluster import (
    ClusterConfig,
    ClusterError,
    ClusterSupervisor,
    serve_cluster,
)
from repro.serve.metrics import LATENCY_BUCKETS, ServiceMetrics
from repro.serve.routes import API_VERSION, ROUTES, Route, openapi_document
from repro.serve.server import (
    CorpusServer,
    DEFAULT_REQUEST_TIMEOUT,
    GZIP_THRESHOLD,
    MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    RoutedResult,
    create_server,
    serve_forever,
    start_server,
)
from repro.serve.service import (
    API_V1_PREFIX,
    CorpusService,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    RenderedResponse,
    ResponseCache,
    ServiceResponse,
)

__all__ = [
    "API_V1_PREFIX",
    "API_VERSION",
    "ClusterConfig",
    "ClusterError",
    "ClusterSupervisor",
    "CorpusServer",
    "CorpusService",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_PAGE_LIMIT",
    "DEFAULT_REQUEST_TIMEOUT",
    "GZIP_THRESHOLD",
    "LATENCY_BUCKETS",
    "MAX_BODY_BYTES",
    "MAX_PAGE_LIMIT",
    "PROMETHEUS_CONTENT_TYPE",
    "ROUTES",
    "RenderedResponse",
    "ResponseCache",
    "Route",
    "RoutedResult",
    "ServiceMetrics",
    "ServiceResponse",
    "create_server",
    "openapi_document",
    "serve_cluster",
    "serve_forever",
    "start_server",
]
