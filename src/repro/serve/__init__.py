"""The read-only corpus serving layer (``repro serve``).

A stdlib ``ThreadingHTTPServer`` over one :class:`~repro.store.CorpusStore`:

====================================  =========================================
``GET /projects``                     paginated projects; ``taxon=``,
                                      ``outcome=``, ``min_<metric>=`` /
                                      ``max_<metric>=``, ``offset=``, ``limit=``
``GET /projects/{id}``                one project + its schema-version ledger
``GET /projects/{id}/heartbeat``      the per-commit heartbeat rows
``GET /taxa``                         per-taxon populations and shares
``GET /stats``                        corpus aggregates + funnel counts
``GET /metrics``                      the metrics registry: JSON, or
                                      Prometheus text via ``Accept``
====================================  =========================================

``{id}`` is a numeric store id or a URL-encoded project name.  All
cacheable responses carry a deterministic ``ETag`` derived from the
store's content hash; ``If-None-Match`` revalidation answers ``304``.
"""

from repro.serve.metrics import LATENCY_BUCKETS, ServiceMetrics
from repro.serve.server import (
    CorpusServer,
    GZIP_THRESHOLD,
    PROMETHEUS_CONTENT_TYPE,
    create_server,
    serve_forever,
    start_server,
)
from repro.serve.service import (
    CorpusService,
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    ServiceResponse,
)

__all__ = [
    "CorpusServer",
    "CorpusService",
    "DEFAULT_PAGE_LIMIT",
    "GZIP_THRESHOLD",
    "LATENCY_BUCKETS",
    "MAX_PAGE_LIMIT",
    "PROMETHEUS_CONTENT_TYPE",
    "ServiceMetrics",
    "ServiceResponse",
    "create_server",
    "serve_forever",
    "start_server",
]
