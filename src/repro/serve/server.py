"""The HTTP front: stdlib ``ThreadingHTTPServer`` around the service.

Read-only JSON over GET, with the properties a corpus API needs to sit
behind heavy traffic:

- **Deterministic revalidation.**  Every cacheable response carries an
  ``ETag`` derived from the store's content hash plus the canonical
  request, so an unchanged store answers repeat queries with ``304 Not
  Modified`` and an empty body.
- **Compression.**  Bodies above a small threshold are gzipped when the
  client advertises ``Accept-Encoding: gzip`` (with ``mtime=0`` so the
  bytes are reproducible).
- **Observability.**  ``/metrics`` exposes the server's
  :class:`~repro.obs.metrics.MetricsRegistry` — JSON by default,
  Prometheus text exposition (``text/plain; version=0.0.4``) when the
  client's ``Accept`` header asks for it — and every request runs under
  an ``http.request`` span when a trace recorder is installed.
- **Graceful shutdown.**  ``serve_forever`` installs SIGINT/SIGTERM
  handlers that drain the threaded server instead of killing sockets.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import CorpusService, ServiceResponse
from repro.store.store import CorpusStore

#: Responses smaller than this are not worth compressing.
GZIP_THRESHOLD = 256

#: The Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class CorpusRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP to :class:`CorpusService` calls."""

    server: "CorpusServer"
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        self.do_GET(head_only=True)

    def do_GET(self, head_only: bool = False) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        with trace("http.request", method="GET", path=split.path) as span:
            if split.path in ("/metrics", "/metrics/"):
                if self._wants_prometheus():
                    body = self.server.metrics.prometheus_text().encode("utf-8")
                    self._send(200, body, {"Content-Type": PROMETHEUS_CONTENT_TYPE},
                               head_only)
                    if span is not None:
                        span.attrs.update(endpoint="/metrics", status=200)
                    self.server.metrics.observe(
                        "/metrics", 200, time.perf_counter() - started, len(body)
                    )
                    return
                result = ServiceResponse(
                    status=200,
                    payload=self.server.metrics.payload(),
                    endpoint="/metrics",
                    cacheable=False,
                )
            else:
                result = self.server.service.handle(split.path, params)
            status, body, headers = self._materialize(result, split.path, split.query)
            self._send(status, body, headers, head_only)
            if span is not None:
                span.attrs.update(endpoint=result.endpoint, status=status)
        self.server.metrics.observe(
            result.endpoint, status, time.perf_counter() - started, len(body)
        )

    def _wants_prometheus(self) -> bool:
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    def _send(
        self, status: int, body: bytes, headers: dict[str, str], head_only: bool
    ) -> None:
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _materialize(
        self, result: ServiceResponse, path: str, query: str
    ) -> tuple[int, bytes, dict[str, str]]:
        headers = {"Content-Type": "application/json; charset=utf-8"}
        etag = None
        if result.cacheable and result.status == 200:
            etag = self.server.etag_for(path, query)
            headers["ETag"] = etag
            headers["Cache-Control"] = "max-age=0, must-revalidate"
            if self._etag_matches(etag):
                return 304, b"", headers
        body = json.dumps(result.payload, sort_keys=True).encode("utf-8")
        if (
            len(body) >= GZIP_THRESHOLD
            and "gzip" in self.headers.get("Accept-Encoding", "")
        ):
            body = gzip.compress(body, mtime=0)
            headers["Content-Encoding"] = "gzip"
        return result.status, body, headers

    def _etag_matches(self, etag: str) -> bool:
        candidates = self.headers.get("If-None-Match", "")
        return etag in [value.strip() for value in candidates.split(",")]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class CorpusServer(ThreadingHTTPServer):
    """A read-only corpus API bound to one :class:`CorpusStore`."""

    daemon_threads = True

    def __init__(
        self,
        store: CorpusStore,
        host: str = "127.0.0.1",
        port: int = 8765,
        verbose: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.service = CorpusService(store)
        self.metrics = ServiceMetrics(registry)
        self.verbose = verbose
        super().__init__((host, port), CorpusRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def etag_for(self, path: str, query: str) -> str:
        """A strong validator: store content hash x canonical request."""
        request_digest = hashlib.sha256(f"{path}?{query}".encode()).hexdigest()
        return f'"{self.store.content_hash()[:20]}-{request_digest[:12]}"'


def create_server(
    store: CorpusStore,
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = False,
    registry: MetricsRegistry | None = None,
) -> CorpusServer:
    """The public constructor: a bound-but-not-running corpus server.

    Callers own the lifecycle (``serve_forever()`` / ``shutdown()``);
    pass ``port=0`` for an ephemeral port and *registry* to publish the
    HTTP metrics into an existing :class:`MetricsRegistry`.
    """
    return CorpusServer(store, host=host, port=port, verbose=verbose,
                        registry=registry)


def start_server(
    store: CorpusStore, host: str = "127.0.0.1", port: int = 0, verbose: bool = False
) -> tuple[CorpusServer, threading.Thread]:
    """Start a server on a background thread (port 0 = ephemeral)."""
    server = create_server(store, host=host, port=port, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(
    store: CorpusStore, host: str = "127.0.0.1", port: int = 8765, verbose: bool = True
) -> None:
    """Run until SIGINT/SIGTERM, then drain in-flight requests."""
    server = create_server(store, host=host, port=port, verbose=verbose)

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
