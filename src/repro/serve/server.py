"""The HTTP front: stdlib ``ThreadingHTTPServer`` around the service.

JSON over GET — plus the first write path, ``POST
/v1/projects/{id}/advise`` — with the properties a corpus API needs to
sit behind heavy traffic:

- **Deterministic revalidation.**  Every cacheable response carries an
  ``ETag`` derived from the store's content hash plus the canonical
  request, so an unchanged store answers repeat queries with ``304 Not
  Modified`` and an empty body.
- **Compression.**  Bodies above a small threshold are gzipped when the
  client advertises ``Accept-Encoding: gzip`` (with ``mtime=0`` so the
  bytes are reproducible).
- **Hot-path caching.**  Rendered ``/v1`` responses come from the
  service's :class:`~repro.serve.service.ResponseCache`: a hit skips
  the store query and the JSON render, and is invalidated implicitly
  when the store's content hash moves (see ``response_cache``).
- **Resilience.**  Every store-touching request runs bounded by
  ``request_timeout`` (a hung read cannot pin a handler thread forever)
  behind a store-level :class:`~repro.resilience.CircuitBreaker`.  When
  the store fails or the breaker is open the server *degrades* instead
  of hanging: a GET whose response was served before comes back from
  the last ETag-consistent snapshot with ``Warning: 110`` and
  ``Retry-After`` headers; anything else gets a 503 envelope with
  ``Retry-After``.  Writes never degrade to stale data — a POST under
  an open breaker is always an honest 503 (the client retries with its
  ``Idempotency-Key``, so the retry is safe).  A half-open probe closes
  the breaker again once the store recovers.
- **Observability.**  ``/metrics`` (and ``/v1/metrics``) exposes the
  server's :class:`~repro.obs.metrics.MetricsRegistry` — JSON by
  default, Prometheus text exposition (``text/plain; version=0.0.4``)
  when the client's ``Accept`` header asks for it — and every request
  runs under an ``http.request`` span when a trace recorder is
  installed.
- **Graceful shutdown.**  ``serve_forever`` installs SIGINT/SIGTERM
  handlers that drain the threaded server instead of killing sockets.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import math
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace
from repro.resilience.policy import CircuitBreaker, DeadlineExceeded, call_with_timeout
from repro.serve.metrics import ServiceMetrics
from repro.serve.routes import API_VERSION
from repro.serve.service import (
    API_V1_PREFIX,
    DEFAULT_CACHE_CAPACITY,
    CorpusService,
    ServiceResponse,
    deprecation_headers,
    render_body,
)
from repro.store.store import CorpusStore

#: Responses smaller than this are not worth compressing.
GZIP_THRESHOLD = 256

#: Hard cap on one request body; beyond it the connection answers 413
#: and closes (the client may still be mid-upload).
MAX_BODY_BYTES = 1 << 20

#: The Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Wall-second budget of one store-touching request (None disables).
DEFAULT_REQUEST_TIMEOUT = 5.0

#: At most this many (path, query) snapshots are kept for degradation.
SNAPSHOT_CAPACITY = 1024

_METRICS_PATHS = ("/metrics", "/metrics/")


@dataclass(frozen=True)
class RoutedResult:
    """What one request resolves to before HTTP materialization.

    ``body`` carries the canonical JSON bytes when the service already
    rendered (or cached) them; ``None`` falls back to rendering from
    ``response.payload`` at send time.
    """

    response: ServiceResponse
    etag: str | None
    extra_headers: tuple[tuple[str, str], ...] = ()
    degraded: bool = False  # True: served stale or unavailable
    body: bytes | None = None


class CorpusRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP to :class:`CorpusService` calls."""

    server: "CorpusServer"
    server_version = "repro-serve/1.4"
    protocol_version = "HTTP/1.1"
    # Headers and body flush as separate segments; without TCP_NODELAY,
    # Nagle + the peer's delayed ACK add ~40ms to every keep-alive
    # response, drowning any server-side latency signal.
    disable_nagle_algorithm = True

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET", head_only=True)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_OPTIONS(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("OPTIONS")

    # Unsupported-but-known methods still route, so the table answers
    # with a uniform 405 + Allow envelope instead of the stdlib's 501.
    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("PUT")

    def do_PATCH(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("PATCH")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def _dispatch(self, method: str, head_only: bool = False) -> None:
        started = time.perf_counter()
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        v1 = split.path == API_V1_PREFIX or split.path.startswith(API_V1_PREFIX + "/")
        with trace("http.request", method=method, path=split.path) as span:
            routed = None
            body_value = None
            if method == "POST":
                routed, body_value = self._read_body(split.path)
            elif method not in ("GET", "OPTIONS"):
                self._drain_body()  # keep keep-alive framing before the 405
            if routed is None and method == "GET":
                routed = self._route_metrics(split.path)
                if routed is None and self._is_prometheus_metrics(split.path):
                    body = self.server.metrics_prometheus().encode("utf-8")
                    headers = {"Content-Type": PROMETHEUS_CONTENT_TYPE}
                    if v1:
                        headers["X-Api-Version"] = str(API_VERSION)
                    for name, value in self._metrics_extra_headers(split.path):
                        headers[name] = value
                    self._send(200, body, headers, head_only)
                    if span is not None:
                        span.attrs.update(
                            endpoint=self._metrics_endpoint(split.path), status=200
                        )
                    self.server.metrics.observe(
                        self._metrics_endpoint(split.path), 200,
                        time.perf_counter() - started, len(body),
                    )
                    return
            if routed is None:
                routed = self.server.guarded_handle(
                    split.path, split.query, params,
                    method=method,
                    body=body_value,
                    idempotency_key=self.headers.get("Idempotency-Key"),
                )
            status, body, headers = self._materialize(routed, head_only)
            if v1:
                headers["X-Api-Version"] = str(API_VERSION)
            self._send(status, body, headers, head_only)
            if span is not None:
                span.attrs.update(endpoint=routed.response.endpoint, status=status)
                if routed.degraded:
                    span.attrs["degraded"] = True
        self.server.metrics.observe(
            routed.response.endpoint, status, time.perf_counter() - started, len(body)
        )

    # -- request-body parsing ----------------------------------------------

    def _protocol_error(
        self, path: str, status: int, message: str,
        detail: str | None = None, close: bool = False,
    ) -> RoutedResult:
        if close:
            self.close_connection = True
        return RoutedResult(
            response=self.server.service.request_error(
                path, status, message, detail=detail
            ),
            etag=None,
        )

    def _drain_body(self, length: int | None = None) -> bool:
        """Discard a request body so keep-alive framing survives.

        Reads up to ``8 * MAX_BODY_BYTES`` in chunks; beyond that the
        connection is marked for close instead (don't relay an abusive
        stream just to keep a socket warm).  Returns True if fully
        drained.
        """
        if length is None:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self.close_connection = True
                return False
        if length > 8 * MAX_BODY_BYTES:
            self.close_connection = True
            return False
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return False
            remaining -= len(chunk)
        return True

    def _read_body(self, path: str) -> tuple[RoutedResult | None, object | None]:
        """Read + parse one JSON request body; (error, None) on failure.

        An oversized body is drained (bounded) before the 413 so the
        client reliably reads the response instead of dying on a broken
        pipe mid-upload; 415 drains nothing extra (the body was already
        read).
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            return (
                self._protocol_error(
                    path, 400, f"invalid Content-Length: {raw_length!r}"
                ),
                None,
            )
        if length > MAX_BODY_BYTES:
            drained = self._drain_body(length)
            return (
                self._protocol_error(
                    path, 413,
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                    detail=f"Content-Length: {length}",
                    close=not drained,
                ),
                None,
            )
        raw = self.rfile.read(length) if length else b""
        content_type = self.headers.get("Content-Type", "application/json")
        if "json" not in content_type.split(";")[0]:
            return (
                self._protocol_error(
                    path, 415,
                    f"unsupported Content-Type: {content_type.split(';')[0]!r}",
                    detail="send application/json",
                ),
                None,
            )
        try:
            return None, json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                self._protocol_error(
                    path, 400, "the request body is not valid JSON",
                    detail=str(exc),
                ),
                None,
            )

    # -- /metrics routing ---------------------------------------------------

    def _is_metrics_path(self, path: str) -> bool:
        if path.startswith(API_V1_PREFIX):
            path = path[len(API_V1_PREFIX):]
        return path in _METRICS_PATHS

    def _is_prometheus_metrics(self, path: str) -> bool:
        if not self._is_metrics_path(path):
            return False
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    def _metrics_endpoint(self, path: str) -> str:
        return f"{API_V1_PREFIX}/metrics" if path.startswith(API_V1_PREFIX) else "/metrics"

    def _metrics_extra_headers(self, path: str) -> tuple[tuple[str, str], ...]:
        if path.startswith(API_V1_PREFIX):
            return ()
        return deprecation_headers(path)

    def _route_metrics(self, path: str) -> RoutedResult | None:
        """/metrics never touches the store: no guard, no ETag."""
        if not self._is_metrics_path(path) or self._is_prometheus_metrics(path):
            return None
        response = ServiceResponse(
            status=200,
            payload=self.server.metrics_payload(),
            endpoint=self._metrics_endpoint(path),
            cacheable=False,
            headers=self._metrics_extra_headers(path),
        )
        return RoutedResult(response=response, etag=None)

    # -- HTTP materialization ----------------------------------------------

    def _send(
        self, status: int, body: bytes, headers: dict[str, str], head_only: bool
    ) -> None:
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _materialize(
        self, routed: RoutedResult, head_only: bool
    ) -> tuple[int, bytes, dict[str, str]]:
        result = routed.response
        headers = {"Content-Type": "application/json; charset=utf-8"}
        for name, value in result.headers:
            headers[name] = value
        for name, value in routed.extra_headers:
            headers[name] = value
        if routed.etag is not None:
            headers["ETag"] = routed.etag
            headers["Cache-Control"] = "max-age=0, must-revalidate"
            if self._etag_matches(routed.etag):
                return 304, b"", headers
        if result.status == 204:
            return 204, b"", headers
        body = routed.body if routed.body is not None else render_body(result.payload)
        if (
            len(body) >= GZIP_THRESHOLD
            and "gzip" in self.headers.get("Accept-Encoding", "")
        ):
            body = gzip.compress(body, mtime=0)
            headers["Content-Encoding"] = "gzip"
        return result.status, body, headers

    def _etag_matches(self, etag: str) -> bool:
        candidates = self.headers.get("If-None-Match", "")
        return etag in [value.strip() for value in candidates.split(",")]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class CorpusServer(ThreadingHTTPServer):
    """A read-only corpus API bound to one :class:`CorpusStore`."""

    daemon_threads = True

    def __init__(
        self,
        store: CorpusStore,
        host: str = "127.0.0.1",
        port: int = 8765,
        verbose: bool = False,
        registry: MetricsRegistry | None = None,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        breaker: CircuitBreaker | None = None,
        response_cache: int = DEFAULT_CACHE_CAPACITY,
        reuse_port: bool = False,
        cluster_workers: int | None = None,
    ) -> None:
        self.store = store
        self.metrics = ServiceMetrics(registry)
        self.service = CorpusService(
            store,
            registry=self.metrics.registry,
            cache_capacity=response_cache,
            cluster_workers=cluster_workers,
        )
        self.verbose = verbose
        self.request_timeout = request_timeout
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name="store",
            failure_threshold=3,
            reset_timeout=5.0,
            registry=self.metrics.registry,
        )
        #: A pre-fork worker installs its cluster-wide aggregation here
        #: (any object with payload()/prometheus_text()); /metrics then
        #: shows the whole cluster instead of one worker's counters.
        self.metrics_view = None
        self._reuse_port = reuse_port
        self._snapshots: OrderedDict[
            tuple[str, str], tuple[ServiceResponse, str, bytes]
        ] = OrderedDict()
        self._snapshot_lock = threading.Lock()
        super().__init__((host, port), CorpusRequestHandler)

    def server_bind(self) -> None:
        # SO_REUSEPORT must be set before bind(); with it, N worker
        # processes listen on the same (host, port) and the kernel
        # load-balances incoming connections across them.
        if self._reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def metrics_payload(self) -> dict:
        view = self.metrics_view if self.metrics_view is not None else self.metrics
        return view.payload()

    def metrics_prometheus(self) -> str:
        view = self.metrics_view if self.metrics_view is not None else self.metrics
        return view.prometheus_text()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def etag_for(self, path: str, query: str) -> str:
        """A strong validator: store content hash x canonical request."""
        return self.etag_from_hash(self.store.content_hash(), path, query)

    @staticmethod
    def etag_from_hash(content_hash: str, path: str, query: str) -> str:
        """The ETag for an already-read content hash (no store access)."""
        request_digest = hashlib.sha256(f"{path}?{query}".encode()).hexdigest()
        return f'"{content_hash[:20]}-{request_digest[:12]}"'

    # -- the resilient request path ----------------------------------------

    def guarded_handle(
        self,
        path: str,
        query: str,
        params: dict[str, str],
        method: str = "GET",
        body: object | None = None,
        idempotency_key: str | None = None,
    ) -> RoutedResult:
        """Route one request through timeout + circuit breaker.

        Service routing *and* ETag computation (a store read) run on a
        bounded call; any raise or timeout trips the breaker and falls
        back to :meth:`_degrade` instead of propagating to the socket.
        Only GETs earn ETags and degradation snapshots — a write's
        response must never be replayed as if the store had served it.
        """
        canonical = "&".join(sorted(query.split("&"))) if query else ""
        key = (path, canonical)
        if not self.breaker.allow():
            return self._degrade(path, key, "store circuit breaker is open", method)

        def call() -> tuple[ServiceResponse, str | None, bytes]:
            rendered = self.service.handle_rendered(
                path, canonical, params,
                method=method, body=body, idempotency_key=idempotency_key,
            )
            response = rendered.response
            etag = (
                self.etag_from_hash(rendered.content_hash, path, query)
                if method == "GET"
                and rendered.content_hash is not None
                and response.cacheable
                and response.status == 200
                else None
            )
            return response, etag, rendered.body

        try:
            response, etag, body_bytes = call_with_timeout(call, self.request_timeout)
        except DeadlineExceeded:
            self.metrics.registry.counter("repro_http_timeouts_total").inc()
            self.breaker.record_failure()
            return self._degrade(
                path, key,
                f"request exceeded its {self.request_timeout}s deadline",
                method,
            )
        except Exception as exc:
            self.breaker.record_failure()
            return self._degrade(
                path, key, f"store failure: {type(exc).__name__}", method
            )
        self.breaker.record_success()
        if etag is not None:
            with self._snapshot_lock:
                self._snapshots[key] = (response, etag, body_bytes)
                self._snapshots.move_to_end(key)
                while len(self._snapshots) > SNAPSHOT_CAPACITY:
                    self._snapshots.popitem(last=False)
        return RoutedResult(response=response, etag=etag, body=body_bytes)

    def _degrade(
        self, path: str, key: tuple[str, str], reason: str, method: str = "GET"
    ) -> RoutedResult:
        """Serve the last known snapshot, else an honest 503 — never hang.

        Writes skip the snapshot path entirely: stale advice must never
        masquerade as a fresh verdict, so a degraded POST is always 503
        + ``Retry-After`` (safe to retry — the Idempotency-Key makes the
        retry exactly-once).
        """
        retry_after = str(max(1, math.ceil(self.breaker.retry_after() or 1.0)))
        snapshot = None
        if method == "GET":
            with self._snapshot_lock:
                snapshot = self._snapshots.get(key)
        if snapshot is not None:
            response, etag, body = snapshot
            self.metrics.registry.counter(
                "repro_http_degraded_total", mode="stale"
            ).inc()
            return RoutedResult(
                response=response,
                etag=etag,
                extra_headers=(
                    ("Warning", f'110 repro-serve "{reason}; serving last snapshot"'),
                    ("Retry-After", retry_after),
                ),
                degraded=True,
                body=body,
            )
        self.metrics.registry.counter(
            "repro_http_degraded_total", mode="unavailable"
        ).inc()
        return RoutedResult(
            response=self.service.unavailable(path, reason),
            etag=None,
            extra_headers=(("Retry-After", retry_after),),
            degraded=True,
        )


def create_server(
    store: CorpusStore,
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = False,
    registry: MetricsRegistry | None = None,
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
    breaker: CircuitBreaker | None = None,
    response_cache: int = DEFAULT_CACHE_CAPACITY,
    reuse_port: bool = False,
    cluster_workers: int | None = None,
) -> CorpusServer:
    """The public constructor: a bound-but-not-running corpus server.

    Callers own the lifecycle (``serve_forever()`` / ``shutdown()``);
    pass ``port=0`` for an ephemeral port, *registry* to publish the
    HTTP metrics into an existing :class:`MetricsRegistry`,
    *request_timeout* (seconds; ``None`` disables) to bound every
    store-touching request, *breaker* to tune or share the store
    circuit breaker, and *response_cache* to size the hot-path
    rendered-response cache (entries; ``0`` disables it).
    *reuse_port* and *cluster_workers* are the pre-fork cluster hooks:
    bind with ``SO_REUSEPORT`` and advertise the worker count on
    ``/v1/stats`` (see :mod:`repro.serve.cluster`).
    """
    return CorpusServer(
        store, host=host, port=port, verbose=verbose, registry=registry,
        request_timeout=request_timeout, breaker=breaker,
        response_cache=response_cache, reuse_port=reuse_port,
        cluster_workers=cluster_workers,
    )


def start_server(
    store: CorpusStore,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    **kwargs,
) -> tuple[CorpusServer, threading.Thread]:
    """Start a server on a background thread (port 0 = ephemeral)."""
    server = create_server(store, host=host, port=port, verbose=verbose, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(
    store: CorpusStore,
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = True,
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
    response_cache: int = DEFAULT_CACHE_CAPACITY,
    registry: MetricsRegistry | None = None,
) -> None:
    """Run until SIGINT/SIGTERM, then drain in-flight requests."""
    server = create_server(
        store, host=host, port=port, verbose=verbose,
        request_timeout=request_timeout, response_cache=response_cache,
        registry=registry,
    )

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
