"""The pre-fork serving cluster: N shared-nothing workers, one port.

One ``ThreadingHTTPServer`` process tops out when Python's GIL
serializes its handler threads.  The classic escape — the same one
nginx, uWSGI and every production Python server use — is pre-fork with
``SO_REUSEPORT``: N worker *processes* each bind their own listening
socket to the same ``(host, port)`` and the kernel load-balances
incoming connections across them.  No shared accept lock, no in-process
router, nothing to contend on:

- **Shared-nothing workers.**  Each worker opens its *own* read-only
  store (via :func:`~repro.store.shard.resolve_store`, so sharded
  corpora just work, with per-shard circuit breakers per worker), its
  own response cache and its own metrics registry.  Workers never talk
  to each other.
- **A supervisor that only supervises.**  The parent process binds a
  placeholder ``SO_REUSEPORT`` socket first (reserving the port — with
  ``--port 0`` the kernel picks one — without ever ``listen()``-ing,
  so it receives no connections), spawns workers, detects deaths
  through their process sentinels and respawns with a boot-loop guard,
  and coordinates SIGINT/SIGTERM drain.  It serves no HTTP itself.
- **Aggregated observability.**  Every worker periodically relays its
  registry (``MetricsRegistry.dump_state()`` with a ``worker="<i>"``
  label stamped on every series) into an atomic JSON file under the
  cluster's runtime directory.  Whichever worker answers ``/metrics``
  merges the peers' relays with its own live registry
  (``merge_state(..., include_gauges=True)`` — the worker labels keep
  gauges collision-free) plus the supervisor's state file, so the
  scraped numbers describe the cluster, not one lucky worker.  Each
  worker also exposes ``repro_serve_worker_id`` and its own
  response-cache hit/miss counters per worker label.
- **Unchanged contracts.**  ETag/304 revalidation, the response cache
  and degraded serving all key on the store's ``content_hash()``, which
  is a pure function of corpus content — every worker derives the same
  ETags, so a client's ``If-None-Match`` revalidates correctly no
  matter which worker the kernel picks.

``repro serve --workers N`` is the CLI entry; ``supervisor.json`` in
the runtime directory is the machine-readable cluster state (CI reads
it to find a victim pid for its kill-a-worker drill).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as sentinel_wait
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import DEFAULT_REQUEST_TIMEOUT, create_server
from repro.serve.service import DEFAULT_CACHE_CAPACITY

#: How often each worker relays its metrics state file (seconds).
RELAY_INTERVAL = 1.0

#: A worker dying within this many seconds of spawn counts as a fast
#: death; MAX_FAST_DEATHS consecutive ones stop the respawn loop (a
#: boot-looping worker — bad store path, port stolen — must surface as
#: an error, not a fork bomb).
FAST_DEATH_WINDOW = 1.0
MAX_FAST_DEATHS = 5

#: Grace period for SIGTERM drain before a worker is SIGKILLed.
DRAIN_GRACE = 10.0

SUPERVISOR_STATE = "supervisor.json"


class ClusterError(RuntimeError):
    """The cluster cannot start or keep running."""


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a worker needs to serve; must stay picklable (spawn)."""

    db: str
    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    verbose: bool = False
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT
    response_cache: int = DEFAULT_CACHE_CAPACITY
    runtime_dir: str = ""
    relay_interval: float = RELAY_INTERVAL

    def worker_state_path(self, index: int) -> Path:
        return Path(self.runtime_dir) / f"worker-{index}.json"

    @property
    def supervisor_state_path(self) -> Path:
        return Path(self.runtime_dir) / SUPERVISOR_STATE


def _atomic_write(path: Path, payload: dict | list) -> None:
    """Readers must never see a half-written relay file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _labeled_state(registry: MetricsRegistry, worker: int) -> list[dict]:
    """The registry's dump with ``worker="<i>"`` stamped on every series."""
    state = registry.dump_state()
    for entry in state:
        entry["labels"] = sorted([*entry["labels"], ("worker", str(worker))])
    return state


class ClusterMetricsView:
    """The /metrics aggregation a worker serves for the whole cluster.

    Merges the worker's *live* registry with every peer's last relayed
    state file and the supervisor's state into a fresh registry per
    render — relays are cumulative snapshots, so building from zero
    each time keeps the merge idempotent.  A missing or torn peer file
    (worker mid-death) is skipped: better a momentarily partial view
    than a failing scrape.
    """

    def __init__(self, config: ClusterConfig, index: int,
                 registry: MetricsRegistry) -> None:
        self.config = config
        self.index = index
        self.registry = registry

    def merged_registry(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        for worker in range(self.config.workers):
            if worker == self.index:
                state = _labeled_state(self.registry, worker)
            else:
                try:
                    raw = self.config.worker_state_path(worker).read_text("utf-8")
                    state = json.loads(raw)
                except (OSError, ValueError):
                    continue
            merged.merge_state(state, include_gauges=True)
        try:
            raw = self.config.supervisor_state_path.read_text("utf-8")
            supervisor = json.loads(raw)
        except (OSError, ValueError):
            supervisor = None
        if supervisor is not None:
            merged.gauge("repro_cluster_workers").set(len(supervisor["workers"]))
            for entry in supervisor["workers"]:
                respawns = entry.get("respawns", 0)
                if respawns:
                    merged.counter(
                        "repro_cluster_respawns_total",
                        worker=str(entry["index"]),
                    ).inc(respawns)
        return merged

    def payload(self) -> dict:
        return ServiceMetrics(self.merged_registry()).payload()

    def prometheus_text(self) -> str:
        return self.merged_registry().prometheus_text()


def _worker_main(config: ClusterConfig, index: int) -> None:
    """One pre-fork worker: bind, serve, relay metrics, drain on signal.

    Runs as the main thread of a spawned process, so it owns its signal
    handlers: SIGTERM/SIGINT trigger a graceful drain (stop accepting,
    finish in-flight requests, write a final metrics relay).
    """
    from repro.store.shard import resolve_store

    registry = MetricsRegistry()
    registry.gauge("repro_serve_worker_id").set(index)
    registry.gauge("repro_serve_worker_pid").set(os.getpid())
    store = resolve_store(config.db, registry=registry)
    server = create_server(
        store,
        host=config.host,
        port=config.port,
        verbose=config.verbose,
        registry=registry,
        request_timeout=config.request_timeout,
        response_cache=config.response_cache,
        reuse_port=True,
        cluster_workers=config.workers,
    )
    server.metrics_view = ClusterMetricsView(config, index, registry)
    state_path = config.worker_state_path(index)
    stop_relay = threading.Event()

    def relay() -> None:
        _atomic_write(state_path, _labeled_state(registry, index))

    def relay_loop() -> None:
        while not stop_relay.wait(config.relay_interval):
            try:
                relay()
            except OSError:  # runtime dir gone mid-shutdown: not fatal
                pass

    relay()  # announce liveness before the first interval elapses
    relay_thread = threading.Thread(target=relay_loop, daemon=True)
    relay_thread.start()

    def _drain(signum, frame) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _drain)
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight handler threads
        stop_relay.set()
        try:
            relay()  # final state: drained counters survive the exit
        except OSError:
            pass
        store.close()


@dataclass
class _WorkerSlot:
    index: int
    process: multiprocessing.process.BaseProcess
    started: float
    respawns: int = 0
    fast_deaths: int = 0


class ClusterSupervisor:
    """Owns the port reservation, the workers, and their lifecycle."""

    def __init__(self, config: ClusterConfig) -> None:
        if config.workers < 1:
            raise ClusterError(f"workers must be >= 1, got {config.workers}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ClusterError("SO_REUSEPORT is not available on this platform")
        if not config.runtime_dir:
            raise ClusterError("a cluster needs a runtime_dir")
        Path(config.runtime_dir).mkdir(parents=True, exist_ok=True)
        self.config = config
        self._ctx = multiprocessing.get_context("spawn")
        self._slots: list[_WorkerSlot] = []
        self._stopping = threading.Event()
        self._placeholder: socket.socket | None = None

    # -- lifecycle ----------------------------------------------------------

    def _reserve_port(self) -> None:
        """Bind (never listen) a SO_REUSEPORT placeholder.

        Resolves ``--port 0`` to a concrete ephemeral port *before* any
        worker spawns — every worker then binds the same number — and
        keeps the port claimed across worker respawns.  A TCP socket
        that never listens receives no connections, so the kernel only
        balances across the actual workers.
        """
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            placeholder.bind((self.config.host, self.config.port))
        except OSError:
            placeholder.close()
            raise
        self._placeholder = placeholder
        port = placeholder.getsockname()[1]
        if port != self.config.port:
            self.config = replace(self.config, port=port)

    @property
    def port(self) -> int:
        return self.config.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.config.port}"

    def _spawn(self, index: int, respawns: int = 0, fast_deaths: int = 0) -> _WorkerSlot:
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.config, index),
            name=f"repro-serve-worker-{index}",
            daemon=False,
        )
        process.start()
        return _WorkerSlot(
            index=index,
            process=process,
            started=time.monotonic(),
            respawns=respawns,
            fast_deaths=fast_deaths,
        )

    def start(self) -> None:
        self._reserve_port()
        self._slots = [self._spawn(index) for index in range(self.config.workers)]
        self._write_state()

    def _write_state(self) -> None:
        _atomic_write(
            self.config.supervisor_state_path,
            {
                "pid": os.getpid(),
                "host": self.config.host,
                "port": self.config.port,
                "db": self.config.db,
                "workers": [
                    {
                        "index": slot.index,
                        "pid": slot.process.pid,
                        "alive": slot.process.is_alive(),
                        "respawns": slot.respawns,
                    }
                    for slot in self._slots
                ],
            },
        )

    def run(self) -> int:
        """Supervise until told to stop; returns a process exit code.

        Blocks on the workers' death sentinels (no polling loop burning
        CPU).  A dead worker is respawned in place — unless it died
        within :data:`FAST_DEATH_WINDOW` of its spawn
        :data:`MAX_FAST_DEATHS` times in a row, which means it cannot
        boot and the whole cluster stops with an error instead of
        fork-bombing.
        """
        while not self._stopping.is_set():
            sentinels = [slot.process.sentinel for slot in self._slots]
            sentinel_wait(sentinels, timeout=1.0)
            if self._stopping.is_set():
                break
            changed = False
            for position, slot in enumerate(self._slots):
                if slot.process.is_alive():
                    continue
                slot.process.join()
                lifetime = time.monotonic() - slot.started
                fast_deaths = (
                    slot.fast_deaths + 1 if lifetime < FAST_DEATH_WINDOW else 0
                )
                if fast_deaths >= MAX_FAST_DEATHS:
                    self._log(
                        f"worker {slot.index} keeps dying at boot "
                        f"(exitcode {slot.process.exitcode}); stopping cluster"
                    )
                    self.stop()
                    return 1
                self._log(
                    f"worker {slot.index} (pid {slot.process.pid}) died with "
                    f"exitcode {slot.process.exitcode} after {lifetime:.1f}s; "
                    "respawning"
                )
                self._slots[position] = self._spawn(
                    slot.index, respawns=slot.respawns + 1, fast_deaths=fast_deaths
                )
                changed = True
            if changed:
                self._write_state()
        self._drain()
        return 0

    def stop(self) -> None:
        """Ask the supervise loop to exit and drain (idempotent)."""
        self._stopping.set()

    def _drain(self) -> None:
        for slot in self._slots:
            if slot.process.is_alive() and slot.process.pid is not None:
                try:
                    os.kill(slot.process.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + DRAIN_GRACE
        for slot in self._slots:
            slot.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
        self._write_state()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"[cluster] {message}", flush=True)


def serve_cluster(config: ClusterConfig) -> int:
    """Run a pre-fork cluster until SIGINT/SIGTERM; returns exit code.

    The supervisor installs the signal handlers; a terminal Ctrl-C also
    reaches the workers directly (same process group) and both paths
    converge on the same drain.
    """
    supervisor = ClusterSupervisor(config)
    supervisor.start()

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        supervisor.stop()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        return supervisor.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        supervisor.stop()
        supervisor._drain()
        return 0
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
