"""The read-only query service behind the HTTP front.

:class:`CorpusService` maps a (path, query) pair to a JSON payload and
status code — no sockets, no headers beyond route-owned ones — so every
route is unit-testable without a running server, and the HTTP layer
stays a thin translation.

The surface is versioned.  ``/v1/...`` is the current API: structured
error envelopes ``{"error": {"code", "message", "detail"}}``, unified
``limit``/``offset`` pagination whose list payloads carry ``next`` and
``total``, and the ``/v1/failures`` ledger of stored
:class:`~repro.pipeline.stages.ProjectFailure` records (with retry
attempt counts).  The legacy unversioned routes keep answering with
their original shapes but carry a ``Deprecation`` header plus a
``Link: <successor>; rel="successor-version"`` pointer.

Hot ``/v1`` responses are served from an LRU :class:`ResponseCache`
keyed on ``(path, canonical query)`` and validated against the store's
``content_hash()``: a hit skips the store query *and* the JSON render
entirely, and an ingest that changes the store invalidates every entry
at once (the hash no longer matches).  Legacy routes, errors, and
``/metrics`` bypass the cache.  Hit/miss/eviction counters and the
render counter publish into the server's metrics registry.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from urllib.parse import unquote, urlencode

from repro.advisor import AdvisorError, advise
from repro.obs.metrics import MetricsRegistry
from repro.serve.cursors import (
    decode_failure_cursor,
    decode_project_cursor,
    encode_failure_cursor,
    encode_project_cursor,
)
from repro.serve.routes import API_VERSION, ROUTES, Route, openapi_document
from repro.store.store import (
    METRIC_COLUMNS,
    AdviceConflict,
    CorpusStore,
    MetricRange,
    StoreError,
)

#: Hard ceiling on one page of a list endpoint.
MAX_PAGE_LIMIT = 500
DEFAULT_PAGE_LIMIT = 50

#: Default entry count of the hot-path response cache (0 disables it).
DEFAULT_CACHE_CAPACITY = 256

#: Integers beyond this are rejected as overflow rather than silently
#: accepted (2**53: the largest range JSON consumers agree on).
MAX_INT_PARAM = 2**53

#: The current API version prefix.
API_V1_PREFIX = "/v1"


@dataclass(frozen=True)
class ServiceResponse:
    """One routed result: HTTP status, JSON payload, cacheability.

    ``headers`` are route-owned extras (deprecation notices, retry
    hints) the HTTP layer emits verbatim on top of its own.
    """

    status: int
    payload: dict
    endpoint: str  # the route pattern, for metrics
    cacheable: bool = True  # False: never ETag-revalidated (/metrics)
    headers: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class RenderedResponse:
    """A routed response plus its canonical JSON bytes.

    ``content_hash`` is the store hash the response was computed under
    (``None`` only when the route never touched the store); ``cache_hit``
    marks responses answered from the :class:`ResponseCache` without a
    store query or a render.
    """

    response: ServiceResponse
    body: bytes
    content_hash: str | None
    cache_hit: bool = False


@dataclass(frozen=True)
class RouteRequest:
    """Everything a route handler may need, in one uniform shape.

    The declarative dispatch hands every handler the same object —
    matched route, HTTP method, parsed query params, the bound path
    parameter (``ref``), and for write routes the parsed JSON body plus
    the client's ``Idempotency-Key``.
    """

    route: Route
    method: str
    v1: bool
    params: dict[str, str]
    ref: int | str | None = None
    body: object | None = None
    idempotency_key: str | None = None


class ResponseCache:
    """Thread-safe LRU of rendered responses, validated by content hash.

    One entry per ``(path, canonical query)`` request; an entry only
    answers while the store's ``content_hash()`` still equals the hash
    it was rendered under, so re-ingesting the corpus invalidates the
    whole cache implicitly — no explicit flush protocol.  Counters::

        repro_serve_cache_hits_total        answered from cache
        repro_serve_cache_misses_total      absent or stale entry
        repro_serve_cache_evictions_total   LRU + stale evictions
        repro_serve_cache_entries           current size (gauge)
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple[str, str], tuple[str, ServiceResponse, bytes]
        ] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, key: tuple[str, str], content_hash: str
    ) -> tuple[ServiceResponse, bytes] | None:
        """The cached (response, body) under *key*, if still valid."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == content_hash:
                self._entries.move_to_end(key)
                self.registry.counter("repro_serve_cache_hits_total").inc()
                return entry[1], entry[2]
            if entry is not None:  # stale: the store changed under it
                del self._entries[key]
                self.registry.counter("repro_serve_cache_evictions_total").inc()
                self.registry.gauge("repro_serve_cache_entries").set(
                    len(self._entries)
                )
        self.registry.counter("repro_serve_cache_misses_total").inc()
        return None

    def store(
        self,
        key: tuple[str, str],
        content_hash: str,
        response: ServiceResponse,
        body: bytes,
    ) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (content_hash, response, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.registry.counter("repro_serve_cache_evictions_total").inc()
            self.registry.gauge("repro_serve_cache_entries").set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.registry.gauge("repro_serve_cache_entries").set(0)


def render_body(payload: dict) -> bytes:
    """The one canonical JSON rendering of a response payload."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _int_param(
    params: dict[str, str],
    key: str,
    default: int,
    minimum: int = 0,
    maximum: int = MAX_INT_PARAM,
) -> int:
    """Parse one integer query parameter, 400ing negatives and overflow."""
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise StoreError(f"{key} must be an integer, got {raw!r}")
    if not minimum <= value <= maximum:
        raise StoreError(f"{key} must be in {minimum}..{maximum}, got {value}")
    return value


def _resolve_ref(raw: str) -> int | str:
    """A path segment is a numeric store id or a URL-encoded name."""
    decoded = unquote(raw)
    return int(decoded) if decoded.isdigit() else decoded


def _error_code_for(status: int) -> str:
    return {
        400: "bad_request",
        404: "not_found",
        405: "method_not_allowed",
        409: "idempotency_conflict",
        413: "payload_too_large",
        415: "unsupported_media_type",
        503: "store_unavailable",
    }.get(status, "error")


def deprecation_headers(path: str) -> tuple[tuple[str, str], ...]:
    """The headers every legacy (unversioned) response carries."""
    return (
        ("Deprecation", "true"),
        ("Link", f'<{API_V1_PREFIX}{path}>; rel="successor-version"'),
    )


def offset_deprecation_headers(
    base: str, params: dict[str, str]
) -> tuple[tuple[str, str], ...]:
    """The headers an explicitly offset-paginated /v1 response carries.

    Offset pagination still works — but it is O(offset) per page, so
    responses the client *asked* to paginate by offset advertise the
    cursor walk as their successor: the same route and filters, minus
    the offset (the first cursor page), in the established
    ``Deprecation: true`` + ``rel="successor-version"`` pattern.
    """
    query = {
        key: value for key, value in params.items() if key not in ("offset", "cursor")
    }
    successor = f"{base}?{urlencode(sorted(query.items()))}" if query else base
    return (
        ("Deprecation", "true"),
        ("Link", f'<{successor}>; rel="successor-version"'),
    )


class CorpusService:
    """Routes read-only queries against one :class:`CorpusStore`."""

    def __init__(
        self,
        store: CorpusStore,
        registry: MetricsRegistry | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        cluster_workers: int | None = None,
    ) -> None:
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = (
            ResponseCache(cache_capacity, self.registry)
            if cache_capacity > 0
            else None
        )
        #: Worker count a pre-fork cluster advertises on /v1/stats
        #: (None: single-process serving, no cluster block).  Only
        #: stable, worker-independent values may go in that block — the
        #: same bytes must come back whichever worker answers.
        self.cluster_workers = cluster_workers
        # The content hash the *current* request was routed under, so
        # routes that echo it (/v1/stats) emit exactly the hash their
        # ETag was derived from even if an ingest commits mid-request.
        self._request_hash = threading.local()

    def handle_rendered(
        self,
        path: str,
        canonical_query: str,
        params: dict[str, str],
        method: str = "GET",
        body: object | None = None,
        idempotency_key: str | None = None,
    ) -> RenderedResponse:
        """Route one request and render its body, through the cache.

        ``content_hash()`` is read exactly once per request; it both
        validates the cache entry and feeds the caller's ETag, so a hit
        answers without any further store work.  Only current-API
        (``/v1``) GET 200s are cached — legacy routes bypass (they are
        deprecated, not worth hot-path memory), writes must always
        reach the store, and errors are always recomputed.  A store
        outage raises out of here (the content-hash read fails), which
        is what trips the caller's circuit breaker.
        """
        v1 = path == API_V1_PREFIX or path.startswith(API_V1_PREFIX + "/")
        content_hash = self.store.content_hash()
        key = (path, canonical_query)
        if v1 and method == "GET" and self.cache is not None:
            cached = self.cache.lookup(key, content_hash)
            if cached is not None:
                response, body_bytes = cached
                return RenderedResponse(
                    response, body_bytes, content_hash, cache_hit=True
                )
        self._request_hash.value = content_hash
        try:
            response = self.handle(
                path, params, method=method, body=body,
                idempotency_key=idempotency_key,
            )
        finally:
            self._request_hash.value = None
        body_bytes = render_body(response.payload)
        self.registry.counter(
            "repro_serve_renders_total", endpoint=response.endpoint
        ).inc()
        if (
            v1
            and method == "GET"
            and self.cache is not None
            and response.cacheable
            and response.status == 200
        ):
            self.cache.store(key, content_hash, response, body_bytes)
        return RenderedResponse(response, body_bytes, content_hash)

    def handle(
        self,
        path: str,
        params: dict[str, str],
        method: str = "GET",
        body: object | None = None,
        idempotency_key: str | None = None,
    ) -> ServiceResponse:
        """Dispatch one request; never raises for bad input."""
        v1 = path == API_V1_PREFIX or path.startswith(API_V1_PREFIX + "/")
        sub = path[len(API_V1_PREFIX):] if v1 else path
        try:
            response = self._route(
                sub or "/", params, v1, method=method, body=body,
                idempotency_key=idempotency_key,
            )
        except AdviceConflict as exc:
            response = self._error(409, str(exc), self._prefix(sub, v1), v1)
        except StoreError as exc:
            response = self._error(400, str(exc), self._prefix(sub, v1), v1)
        if not v1:
            response = replace(
                response, headers=response.headers + deprecation_headers(path)
            )
        return response

    def unavailable(self, path: str, reason: str) -> ServiceResponse:
        """The 503 shape the HTTP layer serves when the store is down."""
        v1 = path == API_V1_PREFIX or path.startswith(API_V1_PREFIX + "/")
        return self._error(
            503,
            "the corpus store is unavailable",
            self._prefix("unavailable", v1),
            v1,
            detail=reason,
        )

    def request_error(
        self, path: str, status: int, message: str, detail: str | None = None
    ) -> ServiceResponse:
        """A protocol-level error (bad body, oversized payload, ...).

        The HTTP layer calls this for failures it detects *before*
        routing — the envelope still follows the path's API version.
        """
        v1 = path == API_V1_PREFIX or path.startswith(API_V1_PREFIX + "/")
        return self._error(
            status, message, self._prefix("/request", v1), v1, detail=detail
        )

    def _prefix(self, endpoint: str, v1: bool) -> str:
        return f"{API_V1_PREFIX}{endpoint}" if v1 else endpoint

    def _route(
        self,
        path: str,
        params: dict[str, str],
        v1: bool,
        method: str = "GET",
        body: object | None = None,
        idempotency_key: str | None = None,
    ) -> ServiceResponse:
        """Dispatch against the declarative route table.

        A known path with an unsupported method answers a uniform 405
        envelope carrying the route's ``Allow`` set; ``OPTIONS`` answers
        204 + ``Allow`` without touching the handler.
        """
        for route in ROUTES:
            if not v1 and not route.legacy:
                continue
            match = route.pattern.match(path)
            if match is None:
                continue
            endpoint = self._prefix(route.template, v1)
            if method == "OPTIONS":
                return ServiceResponse(
                    status=204,
                    payload={},
                    endpoint=endpoint,
                    cacheable=False,
                    headers=(("Allow", route.allow),),
                )
            if method not in route.methods:
                return self._error(
                    405,
                    f"method {method} is not allowed on {endpoint}",
                    endpoint,
                    v1,
                    detail=f"allowed: {route.allow}",
                    headers=(("Allow", route.allow),),
                )
            groups = match.groupdict()
            request = RouteRequest(
                route=route,
                method=method,
                v1=v1,
                params=params,
                ref=_resolve_ref(groups["ref"]) if "ref" in groups else None,
                body=body,
                idempotency_key=idempotency_key,
            )
            return getattr(self, route.handler)(request)
        shown = path if not v1 else API_V1_PREFIX + path
        return self._error(404, f"no such route: {shown}", "unknown", v1)

    # -- shapes ------------------------------------------------------------

    def _error(
        self, status: int, message: str, endpoint: str, v1: bool,
        detail: str | None = None,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> ServiceResponse:
        """v1 wraps errors in the structured envelope; legacy keeps the
        original bare ``{"error": message}`` shape."""
        if v1:
            payload = {
                "error": {
                    "code": _error_code_for(status),
                    "message": message,
                    "detail": detail,
                }
            }
        else:
            payload = {"error": message}
        return ServiceResponse(
            status=status,
            payload=payload,
            endpoint=endpoint,
            cacheable=False,
            headers=headers,
        )

    def _page_params(self, params: dict[str, str]) -> tuple[int, int]:
        offset = _int_param(params, "offset", 0, minimum=0)
        limit = _int_param(
            params, "limit", DEFAULT_PAGE_LIMIT, minimum=1, maximum=MAX_PAGE_LIMIT
        )
        return offset, limit

    @staticmethod
    def _raw_cursor(params: dict[str, str], v1: bool) -> str | None:
        """The raw cursor param, validated for mode conflicts."""
        raw = params.get("cursor")
        if raw is None:
            return None
        if not v1:
            raise StoreError("cursor pagination requires the /v1 API")
        if "offset" in params:
            raise StoreError("cursor and offset are mutually exclusive")
        return raw

    @staticmethod
    def _cursor_link(
        base: str, params: dict[str, str], next_cursor: str | None, limit: int
    ) -> str | None:
        """The relative URL continuing a cursor walk (None when done)."""
        if next_cursor is None:
            return None
        query = dict(params)
        query.pop("offset", None)
        query["cursor"] = next_cursor
        query["limit"] = str(limit)
        return f"{base}?{urlencode(sorted(query.items()))}"

    @staticmethod
    def _next_link(
        base: str, params: dict[str, str], offset: int, limit: int, total: int
    ) -> str | None:
        """The relative URL of the next page, or None on the last one.

        Filter parameters survive the hop; the query is canonicalized
        (sorted) so the link — and with it the page's ETag — is
        deterministic.
        """
        if offset + limit >= total:
            return None
        query = dict(params)
        query["offset"] = str(offset + limit)
        query["limit"] = str(limit)
        return f"{base}?{urlencode(sorted(query.items()))}"

    # -- routes ------------------------------------------------------------

    def _projects(self, req: RouteRequest) -> ServiceResponse:
        params, v1 = req.params, req.v1
        offset, limit = self._page_params(params)
        raw_cursor = self._raw_cursor(params, v1)
        cursor = (
            decode_project_cursor(raw_cursor) if raw_cursor is not None else None
        )
        ranges = []
        for key, value in params.items():
            if key.startswith(("min_", "max_")):
                bound, metric = key.split("_", 1)
                if metric not in METRIC_COLUMNS:
                    raise StoreError(f"unknown metric filter {key!r}")
                try:
                    number = float(value)
                except ValueError:
                    raise StoreError(f"{key} must be numeric, got {value!r}")
                ranges.append(
                    MetricRange(
                        metric,
                        minimum=number if bound == "min" else None,
                        maximum=number if bound == "max" else None,
                    )
                )
        page = self.store.query_projects(
            taxon=params.get("taxon"),
            outcome=params.get("outcome"),
            dialect=params.get("dialect"),
            ranges=ranges,
            offset=offset,
            limit=limit,
            cursor=cursor,
        )
        payload = {
            "total": page.total,
            "offset": page.offset,
            "limit": page.limit,
            "projects": [project.payload() for project in page.projects],
        }
        base = f"{API_V1_PREFIX}/projects"
        headers: tuple[tuple[str, str], ...] = ()
        if v1:
            next_cursor = (
                encode_project_cursor(page.next_cursor)
                if page.next_cursor is not None
                else None
            )
            payload["next_cursor"] = next_cursor
            if cursor is not None:
                payload["next"] = self._cursor_link(base, params, next_cursor, limit)
            else:
                payload["next"] = self._next_link(
                    base, params, offset, limit, page.total
                )
                if "offset" in params:
                    headers = offset_deprecation_headers(base, params)
        return ServiceResponse(
            status=200,
            payload=payload,
            endpoint=self._prefix("/projects", v1),
            headers=headers,
        )

    def _failures(self, req: RouteRequest) -> ServiceResponse:
        params = req.params
        offset, limit = self._page_params(params)
        raw_cursor = self._raw_cursor(params, v1=True)
        total = self.store.failure_count()
        base = f"{API_V1_PREFIX}/failures"
        headers: tuple[tuple[str, str], ...] = ()
        if raw_cursor is not None:
            page = self.store.query_failures(
                cursor=decode_failure_cursor(raw_cursor), limit=limit
            )
            rows = list(page.failures)
            next_cursor = (
                encode_failure_cursor(page.next_cursor)
                if page.next_cursor is not None
                else None
            )
            next_link = self._cursor_link(base, params, next_cursor, limit)
            offset = 0
        else:
            rows = self.store.failures(offset=offset, limit=limit)
            # Derive the keyset continuation from the page itself, so an
            # offset page can always hand the client over to cursor mode.
            next_cursor = (
                encode_failure_cursor(rows[-1].project)
                if rows and offset + limit < total
                else None
            )
            next_link = self._next_link(base, params, offset, limit, total)
            if "offset" in params:
                headers = offset_deprecation_headers(base, params)
        return ServiceResponse(
            status=200,
            payload={
                "total": total,
                "offset": offset,
                "limit": limit,
                "next": next_link,
                "next_cursor": next_cursor,
                "failures": [failure.payload() for failure in rows],
            },
            endpoint=base,
            headers=headers,
        )

    def _project(self, req: RouteRequest) -> ServiceResponse:
        ref, v1 = req.ref, req.v1
        stored = self.store.get_project(ref)
        endpoint = self._prefix("/projects/{id}", v1)
        if stored is None:
            return self._error(404, f"unknown project: {ref}", endpoint, v1)
        payload = stored.payload()
        payload["versions"] = self.store.version_rows(ref)
        return ServiceResponse(status=200, payload=payload, endpoint=endpoint)

    def _heartbeat(self, req: RouteRequest) -> ServiceResponse:
        ref, v1 = req.ref, req.v1
        stored = self.store.get_project(ref)
        endpoint = self._prefix("/projects/{id}/heartbeat", v1)
        if stored is None:
            return self._error(404, f"unknown project: {ref}", endpoint, v1)
        rows = self.store.heartbeat_rows(ref) or []
        return ServiceResponse(
            status=200,
            payload={
                "id": stored.id,
                "project": stored.name,
                "taxon": stored.taxon,
                "transitions": len(rows),
                "heartbeat": rows,
            },
            endpoint=endpoint,
        )

    def _taxa(self, req: RouteRequest) -> ServiceResponse:
        return ServiceResponse(
            status=200,
            payload={
                "taxa": self.store.taxa_summary(),
                "by_dialect": self.store.taxa_by_dialect(),
            },
            endpoint=self._prefix("/taxa", req.v1),
        )

    def _stats(self, req: RouteRequest) -> ServiceResponse:
        v1 = req.v1
        payload = self.store.aggregates()
        request_hash = getattr(self._request_hash, "value", None)
        payload["content_hash"] = (
            request_hash if request_hash is not None else self.store.content_hash()
        )
        if v1 and self.cluster_workers is not None:
            payload["cluster"] = {"workers": self.cluster_workers}
        if v1:
            payload["api"] = {"version": API_VERSION, "routes": len(ROUTES)}
        return ServiceResponse(
            status=200, payload=payload, endpoint=self._prefix("/stats", v1)
        )

    def _openapi(self, req: RouteRequest) -> ServiceResponse:
        from repro import __version__

        return ServiceResponse(
            status=200,
            payload=openapi_document(__version__),
            endpoint=self._prefix("/openapi.json", req.v1),
        )

    def _advise(self, req: RouteRequest) -> ServiceResponse:
        """The write path: persist-or-replay migration advice.

        POST parses the proposal, runs the advisor, and records the
        advice under ``(project, Idempotency-Key)`` in one store
        transaction — the same key with the same body replays the
        *stored bytes* (byte-identical response, ``Idempotency-Replayed``
        header), the same key with a different body answers 409.  A
        request without a key gets a content-derived one
        (``sha256:<body hash>``), making retries of identical bodies
        idempotent by construction.  GET lists the persisted ledger.
        """
        endpoint = self._prefix("/projects/{id}/advise", req.v1)
        stored = self.store.get_project(req.ref)
        if stored is None:
            return self._error(404, f"unknown project: {req.ref}", endpoint, req.v1)
        if req.method == "GET":
            records = self.store.advice_records(stored.name)
            return ServiceResponse(
                status=200,
                payload={
                    "project": stored.name,
                    "project_id": stored.id,
                    "total": len(records),
                    "advice": [
                        json.loads(record.response.decode("utf-8"))
                        for record in records
                    ],
                },
                endpoint=endpoint,
                cacheable=False,
            )
        body = req.body
        if not isinstance(body, dict):
            return self._error(
                400, "the request body must be a JSON object", endpoint, req.v1
            )
        ddl = body.get("ddl")
        if not isinstance(ddl, str) or not ddl.strip():
            return self._error(
                400,
                'the request body must carry a non-empty "ddl" string',
                endpoint,
                req.v1,
            )
        history = self.store.project_history(stored.name)
        if history is None or not history.history.versions:
            return self._error(
                400,
                f"{stored.name} has no stored schema history to advise against",
                endpoint,
                req.v1,
            )
        body_sha256 = hashlib.sha256(render_body(body)).hexdigest()
        key = req.idempotency_key or f"sha256:{body_sha256}"
        # Fast path: a replay never burns an advisor run (or, under the
        # sharded store, a global advice id).
        existing = self.store.lookup_advice(stored.name, key)
        if existing is not None and existing.body_sha256 == body_sha256:
            return ServiceResponse(
                status=200,
                payload=json.loads(existing.response.decode("utf-8")),
                endpoint=endpoint,
                cacheable=False,
                headers=(
                    ("Idempotency-Key", key),
                    ("Idempotency-Replayed", "true"),
                ),
            )
        try:
            advice = advise(
                history,
                ddl,
                project_id=stored.id,
                taxon=stored.taxon,
                heartbeat_rows=self.store.heartbeat_rows(stored.name) or [],
            )
        except AdvisorError as exc:
            return self._error(400, str(exc), endpoint, req.v1)

        def build_response(advice_id: int) -> bytes:
            return render_body(
                {"advice_id": advice_id, "idempotency_key": key, **advice.payload()}
            )

        record, replayed = self.store.record_advice(
            project_id=stored.id,
            project=stored.name,
            idempotency_key=key,
            body_sha256=body_sha256,
            build_response=build_response,
        )
        headers = [("Idempotency-Key", key)]
        if replayed:
            headers.append(("Idempotency-Replayed", "true"))
        return ServiceResponse(
            status=200,
            payload=json.loads(record.response.decode("utf-8")),
            endpoint=endpoint,
            cacheable=False,
            headers=tuple(headers),
        )
