"""The read-only query service behind the HTTP front.

:class:`CorpusService` maps a (path, query) pair to a JSON payload and
status code — no sockets, no headers — so every route is unit-testable
without a running server, and the HTTP layer stays a thin translation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from urllib.parse import unquote

from repro.store.store import (
    METRIC_COLUMNS,
    CorpusStore,
    MetricRange,
    StoreError,
)

#: Hard ceiling on one page of /projects.
MAX_PAGE_LIMIT = 500
DEFAULT_PAGE_LIMIT = 50

_HEARTBEAT_RE = re.compile(r"^/projects/(?P<ref>[^/]+)/heartbeat$")
_PROJECT_RE = re.compile(r"^/projects/(?P<ref>[^/]+)$")


@dataclass(frozen=True)
class ServiceResponse:
    """One routed result: HTTP status, JSON payload, cacheability."""

    status: int
    payload: dict
    endpoint: str  # the route pattern, for metrics
    cacheable: bool = True  # False: never ETag-revalidated (/metrics)


def _error(status: int, message: str, endpoint: str) -> ServiceResponse:
    return ServiceResponse(
        status=status, payload={"error": message}, endpoint=endpoint, cacheable=False
    )


def _int_param(params: dict[str, str], key: str, default: int) -> int:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise StoreError(f"{key} must be an integer, got {raw!r}")


def _resolve_ref(raw: str) -> int | str:
    """A path segment is a numeric store id or a URL-encoded name."""
    decoded = unquote(raw)
    return int(decoded) if decoded.isdigit() else decoded


class CorpusService:
    """Routes read-only queries against one :class:`CorpusStore`."""

    def __init__(self, store: CorpusStore) -> None:
        self.store = store

    def handle(self, path: str, params: dict[str, str]) -> ServiceResponse:
        """Dispatch one GET request; never raises for bad input."""
        try:
            if path in ("/projects", "/projects/"):
                return self._projects(params)
            match = _HEARTBEAT_RE.match(path)
            if match:
                return self._heartbeat(_resolve_ref(match.group("ref")))
            match = _PROJECT_RE.match(path)
            if match:
                return self._project(_resolve_ref(match.group("ref")))
            if path in ("/taxa", "/taxa/"):
                return self._taxa()
            if path in ("/stats", "/stats/"):
                return self._stats()
            return _error(404, f"no such route: {path}", "unknown")
        except StoreError as exc:
            return _error(400, str(exc), path)

    # -- routes -----------------------------------------------------------

    def _projects(self, params: dict[str, str]) -> ServiceResponse:
        offset = _int_param(params, "offset", 0)
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT)
        if not 1 <= limit <= MAX_PAGE_LIMIT:
            raise StoreError(f"limit must be in 1..{MAX_PAGE_LIMIT}, got {limit}")
        ranges = []
        for key, value in params.items():
            if key.startswith(("min_", "max_")):
                bound, metric = key.split("_", 1)
                if metric not in METRIC_COLUMNS:
                    raise StoreError(f"unknown metric filter {key!r}")
                try:
                    number = float(value)
                except ValueError:
                    raise StoreError(f"{key} must be numeric, got {value!r}")
                ranges.append(
                    MetricRange(
                        metric,
                        minimum=number if bound == "min" else None,
                        maximum=number if bound == "max" else None,
                    )
                )
        page = self.store.query_projects(
            taxon=params.get("taxon"),
            outcome=params.get("outcome"),
            ranges=ranges,
            offset=offset,
            limit=limit,
        )
        return ServiceResponse(
            status=200,
            payload={
                "total": page.total,
                "offset": page.offset,
                "limit": page.limit,
                "projects": [project.payload() for project in page.projects],
            },
            endpoint="/projects",
        )

    def _project(self, ref: int | str) -> ServiceResponse:
        stored = self.store.get_project(ref)
        if stored is None:
            return _error(404, f"unknown project: {ref}", "/projects/{id}")
        payload = stored.payload()
        payload["versions"] = self.store.version_rows(ref)
        return ServiceResponse(status=200, payload=payload, endpoint="/projects/{id}")

    def _heartbeat(self, ref: int | str) -> ServiceResponse:
        stored = self.store.get_project(ref)
        if stored is None:
            return _error(404, f"unknown project: {ref}", "/projects/{id}/heartbeat")
        rows = self.store.heartbeat_rows(ref) or []
        return ServiceResponse(
            status=200,
            payload={
                "id": stored.id,
                "project": stored.name,
                "taxon": stored.taxon,
                "transitions": len(rows),
                "heartbeat": rows,
            },
            endpoint="/projects/{id}/heartbeat",
        )

    def _taxa(self) -> ServiceResponse:
        return ServiceResponse(
            status=200, payload={"taxa": self.store.taxa_summary()}, endpoint="/taxa"
        )

    def _stats(self) -> ServiceResponse:
        payload = self.store.aggregates()
        payload["content_hash"] = self.store.content_hash()
        return ServiceResponse(status=200, payload=payload, endpoint="/stats")
