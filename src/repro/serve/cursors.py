"""Opaque keyset-pagination cursor tokens for the /v1 API.

A cursor names "resume strictly after this row" — the row id for
``/v1/projects``, the project name for ``/v1/failures``.  Tokens are
**opaque by contract**: clients must treat them as returned strings
(the API.md contract), and the type prefix inside the encoding means a
projects cursor pasted into the failures endpoint fails loudly with a
400 instead of silently misbehaving.

Because the payload is a key — not a position — a cursor stays *stable
under concurrent re-ingest*: re-measured projects keep their ids, new
projects only append beyond the high-water mark, and a deleted row is
simply skipped by the ``> key`` seek.  An offset, by contrast, shifts
whenever any earlier row appears or disappears.
"""

from __future__ import annotations

import base64
import binascii

from repro.store.store import StoreError

_PROJECT_PREFIX = "p:"
_FAILURE_PREFIX = "f:"


def _encode(payload: str) -> str:
    raw = base64.urlsafe_b64encode(payload.encode("utf-8"))
    return raw.rstrip(b"=").decode("ascii")


def _decode(token: str) -> str:
    if not token:
        raise StoreError("cursor must not be empty")
    padded = token + "=" * (-len(token) % 4)
    try:
        return base64.urlsafe_b64decode(padded.encode("ascii")).decode("utf-8")
    except (binascii.Error, UnicodeError, ValueError):
        raise StoreError(f"malformed cursor {token!r}")


def encode_project_cursor(last_id: int) -> str:
    """The opaque token resuming a projects walk after row *last_id*."""
    return _encode(f"{_PROJECT_PREFIX}{last_id}")


def decode_project_cursor(token: str) -> int:
    """The row id inside a projects cursor (400s on any other token)."""
    payload = _decode(token)
    if not payload.startswith(_PROJECT_PREFIX) or not payload[
        len(_PROJECT_PREFIX):
    ].isdigit():
        raise StoreError(f"not a projects cursor: {token!r}")
    return int(payload[len(_PROJECT_PREFIX):])


def encode_failure_cursor(last_project: str) -> str:
    """The opaque token resuming a failures walk after *last_project*."""
    return _encode(f"{_FAILURE_PREFIX}{last_project}")


def decode_failure_cursor(token: str) -> str:
    """The project name inside a failures cursor (400s otherwise)."""
    payload = _decode(token)
    if not payload.startswith(_FAILURE_PREFIX) or len(payload) <= len(
        _FAILURE_PREFIX
    ):
        raise StoreError(f"not a failures cursor: {token!r}")
    return payload[len(_FAILURE_PREFIX):]
