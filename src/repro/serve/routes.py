"""The declarative route table: one registry driving dispatch and docs.

Every ``/v1`` route is a :class:`Route` row — path template, compiled
pattern, *per-route method set*, handler name, query parameters — and
everything that used to be scattered across the GET-only dispatch chain
derives from it:

- the service's method-aware dispatch (405 + ``Allow`` for a known path
  with an unknown method, ``OPTIONS`` → 204 + ``Allow``);
- the ``GET /v1/openapi.json`` document (paths, methods, parameters,
  the error-envelope schema), generated rather than hand-maintained so
  it cannot drift from the table;
- the ``"api"`` block on ``/v1/stats`` (version + route count).

Routes flagged ``legacy`` also answer un-prefixed (deprecated, with the
``Deprecation``/``Link`` successor headers the service already adds).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: The integer API version every /v1 response advertises
#: (``X-Api-Version`` header, /v1/stats ``api`` block, openapi info).
API_VERSION = 1


def _compile(template: str) -> re.Pattern:
    """``/projects/{id}/advise`` -> a pattern binding ``{id}`` as ``ref``.

    Parameter-less routes tolerate one trailing slash (matching the
    historical dispatch); parameterised ones do not.
    """
    pattern = ""
    for part in re.split(r"(\{[a-z_]+\})", template):
        if part.startswith("{") and part.endswith("}"):
            pattern += r"(?P<ref>[^/]+)"
        else:
            pattern += re.escape(part)
    if "{" not in template:
        pattern += "/?"
    return re.compile(f"^{pattern}$")


@dataclass(frozen=True)
class Route:
    """One registered route: the single source of truth for its surface."""

    template: str  # path template relative to the /v1 prefix
    methods: frozenset[str]
    handler: str  # CorpusService method name
    summary: str
    legacy: bool = False  # also served un-prefixed, deprecated
    query_params: tuple[str, ...] = ()
    request_body: bool = False  # POST carries a JSON body
    pattern: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pattern", _compile(self.template))

    @property
    def allow(self) -> str:
        """The ``Allow`` header value: route methods + the implied ones."""
        implied = {"OPTIONS"} | ({"HEAD"} if "GET" in self.methods else set())
        return ", ".join(sorted(self.methods | implied))

    @property
    def path_params(self) -> tuple[str, ...]:
        return tuple(re.findall(r"\{([a-z_]+)\}", self.template))


_PROJECT_FILTERS = (
    "taxon", "outcome", "dialect", "limit", "offset", "cursor",
    "min_<metric>", "max_<metric>",
)

#: The registry.  Order is cosmetic (templates are non-overlapping);
#: dispatch tries rows top to bottom.
ROUTES: tuple[Route, ...] = (
    Route(
        template="/projects",
        methods=frozenset({"GET"}),
        handler="_projects",
        summary="Filtered, paginated projects (keyset cursor or offset).",
        legacy=True,
        query_params=_PROJECT_FILTERS,
    ),
    Route(
        template="/projects/{id}",
        methods=frozenset({"GET"}),
        handler="_project",
        summary="One project's record and schema-version ledger.",
        legacy=True,
    ),
    Route(
        template="/projects/{id}/heartbeat",
        methods=frozenset({"GET"}),
        handler="_heartbeat",
        summary="The per-commit heartbeat of one project.",
        legacy=True,
    ),
    Route(
        template="/projects/{id}/advise",
        methods=frozenset({"GET", "POST"}),
        handler="_advise",
        summary=(
            "POST a proposed DDL change for a versioned migration script"
            " and atypicality findings; GET the persisted advice ledger."
        ),
        request_body=True,
    ),
    Route(
        template="/failures",
        methods=frozenset({"GET"}),
        handler="_failures",
        summary="The stored failure ledger (keyset cursor or offset).",
        query_params=("limit", "offset", "cursor"),
    ),
    Route(
        template="/taxa",
        methods=frozenset({"GET"}),
        handler="_taxa",
        summary="Population and share-of-studied per taxon.",
        legacy=True,
    ),
    Route(
        template="/stats",
        methods=frozenset({"GET"}),
        handler="_stats",
        summary="Corpus-level aggregates, content hash and API metadata.",
        legacy=True,
    ),
    Route(
        template="/openapi.json",
        methods=frozenset({"GET"}),
        handler="_openapi",
        summary="This document: OpenAPI 3.1 generated from the route table.",
    ),
)

#: The structured error envelope every /v1 error response uses.
ERROR_SCHEMA = {
    "type": "object",
    "required": ["error"],
    "properties": {
        "error": {
            "type": "object",
            "required": ["code", "message"],
            "properties": {
                "code": {"type": "string"},
                "message": {"type": "string"},
                "detail": {"type": ["string", "null"]},
            },
        }
    },
}


def _parameters(route: Route) -> list[dict]:
    parameters = [
        {
            "name": name,
            "in": "path",
            "required": True,
            "description": "numeric store id or URL-encoded project name",
            "schema": {"type": "string"},
        }
        for name in route.path_params
    ]
    for name in route.query_params:
        parameters.append(
            {
                "name": name,
                "in": "query",
                "required": False,
                "schema": {"type": "string"},
            }
        )
    return parameters


def openapi_document(app_version: str) -> dict:
    """The OpenAPI 3.1 description of every registered /v1 route."""
    paths: dict[str, dict] = {}
    error_response = {
        "description": "error envelope",
        "content": {
            "application/json": {
                "schema": {"$ref": "#/components/schemas/Error"}
            }
        },
    }
    for route in ROUTES:
        operations: dict[str, dict] = {}
        for method in sorted(route.methods):
            operation = {
                "summary": route.summary,
                "parameters": _parameters(route),
                "responses": {
                    "200": {
                        "description": "success",
                        "content": {
                            "application/json": {"schema": {"type": "object"}}
                        },
                    },
                    "default": error_response,
                },
            }
            if method == "POST" and route.request_body:
                operation["requestBody"] = {
                    "required": True,
                    "content": {
                        "application/json": {
                            "schema": {
                                "type": "object",
                                "required": ["ddl"],
                                "properties": {
                                    "ddl": {
                                        "type": "string",
                                        "description": (
                                            "the full proposed schema as"
                                            " DDL text"
                                        ),
                                    }
                                },
                            }
                        }
                    },
                }
            operations[method.lower()] = operation
        paths[f"/v1{route.template}"] = operations
    return {
        "openapi": "3.1.0",
        "info": {
            "title": "repro corpus API",
            "version": app_version,
            "x-api-version": API_VERSION,
        },
        "paths": paths,
        "components": {"schemas": {"Error": ERROR_SCHEMA}},
    }
