"""Per-endpoint request/latency metrics for the serving layer.

The ROADMAP's "heavy traffic" north star starts with being able to see
the traffic.  Every request publishes into one
:class:`~repro.obs.metrics.MetricsRegistry`:

    repro_http_requests_total{endpoint=...,status=...}   counter
    repro_http_request_seconds{endpoint=...}             histogram
    repro_http_response_bytes_total{endpoint=...}        counter

``/metrics`` serves the registry as JSON by default (the classic
per-endpoint table plus the raw ``registry`` snapshot) and as
Prometheus text exposition under content negotiation
(``Accept: text/plain`` — see :mod:`repro.serve.server`).
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry

#: Latency buckets (seconds) sized for a local read-only JSON API.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class ServiceMetrics:
    """Registry-backed request accounting, one series set per endpoint."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def observe(
        self, endpoint: str, status: int, seconds: float, body_bytes: int = 0
    ) -> None:
        self.registry.counter(
            "repro_http_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        self.registry.histogram(
            "repro_http_request_seconds", buckets=LATENCY_BUCKETS, endpoint=endpoint
        ).observe(seconds)
        self.registry.counter(
            "repro_http_response_bytes_total", endpoint=endpoint
        ).inc(body_bytes)

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.prometheus_text()

    def payload(self) -> dict:
        """The JSON ``/metrics`` body: per-endpoint table + raw snapshot.

        Accumulates across *every* series sharing an endpoint, so extra
        labels — a cluster worker's ``worker="<i>"`` tag — fold into one
        honest per-endpoint row instead of the last series winning.
        """
        by_endpoint: dict[str, dict] = {}
        latency: dict[str, dict] = {}
        bytes_sent: dict[str, int | float] = {}
        for labels, metric in self.registry.series("repro_http_requests_total"):
            entry = by_endpoint.setdefault(
                labels["endpoint"], {"requests": 0, "by_status": {}}
            )
            entry["requests"] += metric.value
            status = labels["status"]
            entry["by_status"][status] = entry["by_status"].get(status, 0) + metric.value
        for labels, metric in self.registry.series("repro_http_request_seconds"):
            assert isinstance(metric, Histogram)
            acc = latency.setdefault(
                labels["endpoint"],
                {"sum": 0.0, "count": 0, "min": float("inf"), "max": 0.0},
            )
            acc["sum"] += metric.sum
            acc["count"] += metric.count
            if metric.count:
                acc["min"] = min(acc["min"], metric.minimum)
                acc["max"] = max(acc["max"], metric.maximum)
        for labels, metric in self.registry.series("repro_http_response_bytes_total"):
            endpoint = labels["endpoint"]
            bytes_sent[endpoint] = bytes_sent.get(endpoint, 0) + metric.value
        for endpoint in latency:
            by_endpoint.setdefault(endpoint, {"requests": 0, "by_status": {}})
        for endpoint, entry in by_endpoint.items():
            acc = latency.get(endpoint)
            if acc is not None:
                avg = acc["sum"] / acc["count"] if acc["count"] else 0.0
                minimum = acc["min"] if acc["count"] else 0.0
                entry["latency_ms"] = {
                    "avg": round(avg * 1000, 3),
                    "min": round(minimum * 1000, 3),
                    "max": round(acc["max"] * 1000, 3),
                }
            else:
                entry["latency_ms"] = {"avg": 0.0, "min": 0.0, "max": 0.0}
            entry["by_status"] = dict(sorted(entry["by_status"].items()))
            entry["bytes_sent"] = bytes_sent.get(endpoint, 0)
        return {
            "endpoints": dict(sorted(by_endpoint.items())),
            "total_requests": sum(
                entry["requests"] for entry in by_endpoint.values()
            ),
            "registry": self.registry.snapshot(),
        }
