"""Per-endpoint request/latency counters for the serving layer.

The ROADMAP's "heavy traffic" north star starts with being able to see
the traffic: every request increments its endpoint's counters (count,
per-status split, latency sum/min/max) behind one lock, and ``/metrics``
serves the whole table as JSON.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class EndpointCounters:
    """Counters of one route pattern."""

    requests: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    bytes_sent: int = 0

    def observe(self, status: int, seconds: float, body_bytes: int) -> None:
        self.requests += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        self.bytes_sent += body_bytes

    def payload(self) -> dict:
        avg = self.total_seconds / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "by_status": {str(code): n for code, n in sorted(self.by_status.items())},
            "latency_ms": {
                "avg": round(avg * 1000, 3),
                "min": round(self.min_seconds * 1000, 3) if self.requests else 0.0,
                "max": round(self.max_seconds * 1000, 3),
            },
            "bytes_sent": self.bytes_sent,
        }


class ServiceMetrics:
    """Thread-safe registry of per-endpoint counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointCounters] = {}

    def observe(
        self, endpoint: str, status: int, seconds: float, body_bytes: int = 0
    ) -> None:
        with self._lock:
            counters = self._endpoints.setdefault(endpoint, EndpointCounters())
            counters.observe(status, seconds, body_bytes)

    def payload(self) -> dict:
        with self._lock:
            return {
                "endpoints": {
                    endpoint: counters.payload()
                    for endpoint, counters in sorted(self._endpoints.items())
                },
                "total_requests": sum(
                    counters.requests for counters in self._endpoints.values()
                ),
            }
