"""Unified observability: span tracing, metrics registry, profiling.

One subsystem replaces the repo's three disjoint counter systems and
zero-logging status quo:

- :mod:`repro.obs.trace` — ``trace(name, **attrs)`` span context
  manager (thread-safe, nestable) and the per-run :class:`TraceRecorder`
  serializing to JSONL; wired through every pipeline stage, every
  ingest phase, and every HTTP request;
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms that ``PipelineStats``, the
  schema-cache counters, and the serving layer all publish into; one
  ``registry.snapshot()`` shape plus Prometheus text exposition;
- :mod:`repro.obs.profile` — ``profiled(path)`` wraps a run in
  ``cProfile`` and writes ``.pstats`` (the CLI's ``--profile``).

The CLI exposes the tracer as ``--trace FILE`` on every corpus-running
command; the serving layer exposes the registry on ``/metrics`` (JSON
by default, ``text/plain; version=0.0.4`` under content negotiation).
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
)
from repro.obs.profile import (
    active_profile_path,
    merge_worker_profiles,
    profile_path_for,
    profiled,
)
from repro.obs.trace import (
    TRACE_LINE_SCHEMA,
    Span,
    TraceRecorder,
    active_recorder,
    current_span_id,
    install_recorder,
    read_trace,
    recording,
    trace,
    uninstall_recorder,
    validate_trace_line,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TRACE_LINE_SCHEMA",
    "TraceRecorder",
    "active_recorder",
    "active_profile_path",
    "current_span_id",
    "install_recorder",
    "merge_worker_profiles",
    "metrics_registry",
    "profile_path_for",
    "profiled",
    "read_trace",
    "recording",
    "trace",
    "uninstall_recorder",
    "validate_trace_line",
]
