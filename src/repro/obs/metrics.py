"""The process-wide metrics registry: counters, gauges, histograms.

Before this module the repo grew three disjoint counter systems —
:class:`~repro.pipeline.stats.PipelineStats`,
:class:`~repro.pipeline.cache.CacheCounters`, and the serving layer's
per-endpoint table — each with its own locking and its own incompatible
``payload()`` shape.  :class:`MetricsRegistry` is the one substrate they
all publish into now: a named metric plus a label set maps to exactly
one instrument, ``snapshot()`` renders every instrument into one
JSON-friendly dict, and ``prometheus_text()`` renders the same data in
the Prometheus text exposition format (``text/plain; version=0.0.4``)
so the ``/metrics`` endpoint can be scraped by stock tooling.

Instruments follow the Prometheus data model:

- :class:`Counter` — monotonically increasing total (``_total`` names);
- :class:`Gauge` — a settable point-in-time value;
- :class:`Histogram` — fixed cumulative buckets plus sum/count (and
  min/max extras for the JSON views).

All instruments are thread-safe; get-or-create is idempotent, so every
call site can say ``registry.counter(name, **labels).inc()`` without
coordinating creation.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

#: Default histogram buckets (seconds): spans sub-millisecond parses to
#: multi-second corpus runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, str]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _series_name(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _number(value: float) -> int | float:
    """Render integral floats as ints so JSON payloads stay clean."""
    return int(value) if float(value).is_integer() else value


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return _number(self._value)


class Gauge:
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return _number(self._value)


class Histogram:
    """Fixed-bucket distribution with sum/count (plus min/max extras)."""

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelSet, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(f"histogram {name} needs sorted unique buckets")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def merge_counts(
        self, counts: list[int], total: float, count: int, minimum: float, maximum: float
    ) -> None:
        """Fold another histogram's raw state into this one (same buckets)."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name} merge: bucket layouts differ"
            )
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._sum += total
            self._count += count
            if count:
                self._min = min(self._min, minimum)
                self._max = max(self._max, maximum)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float:
        return 0.0 if self._count == 0 else self._min

    @property
    def maximum(self) -> float:
        return self._max

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le, cumulative count)`` rows, ending with ``+Inf``."""
        rows: list[tuple[str, int]] = []
        running = 0
        with self._lock:
            counts = list(self._counts)
        for bound, count in zip(self.buckets, counts):
            running += count
            rows.append((repr(bound), running))
        rows.append(("+Inf", running + counts[-1]))
        return rows

    def payload(self) -> dict:
        return {
            "count": self._count,
            "sum": round(self._sum, 9),
            "min": round(self.minimum, 9),
            "max": round(self._max, 9),
            "buckets": dict(self.cumulative()),
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Thread-safe, get-or-create registry of named instruments.

    One ``(name, labels)`` pair owns exactly one instrument; asking for
    the same pair with a different kind is a programming error and
    raises.  Components receive a registry (or create a private one) so
    a pipeline run, an ingest run, or a server process each snapshot as
    one coherent unit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelSet], Metric] = {}

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs) -> Metric:
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- reading ----------------------------------------------------------

    def collect(self) -> list[Metric]:
        """Every instrument, sorted by (name, labels) for stable output."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def value(self, name: str, **labels: str) -> int | float:
        """A counter/gauge value, or 0 when the series does not exist."""
        with self._lock:
            metric = self._metrics.get((name, _labelset(labels)))
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise ValueError(f"{name} is a histogram; read it via series()")
        return metric.value

    def series(self, name: str) -> Iterator[tuple[dict[str, str], Metric]]:
        """Every ``(labels, instrument)`` registered under *name*."""
        for metric in self.collect():
            if metric.name == name:
                yield dict(metric.labels), metric

    def label_values(self, name: str, label: str) -> dict[str, int | float]:
        """Map one label's values to the series' scalar values.

        ``label_values("repro_pipeline_stage_seconds_total", "stage")``
        rebuilds the classic ``{stage: seconds}`` dict from the flat
        label-series representation.
        """
        out: dict[str, int | float] = {}
        for labels, metric in self.series(name):
            if label in labels and not isinstance(metric, Histogram):
                out[labels[label]] = metric.value
        return out

    # -- cross-process relay ----------------------------------------------

    def dump_state(self) -> list[dict]:
        """Every instrument's raw state as picklable primitives.

        The process execution backend ships each worker's registry back
        to the parent as this list; :meth:`merge_state` folds it in.
        """
        out: list[dict] = []
        for metric in self.collect():
            entry: dict = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": list(metric.labels),
            }
            if isinstance(metric, Histogram):
                with metric._lock:
                    entry.update(
                        buckets=list(metric.buckets),
                        counts=list(metric._counts),
                        sum=metric._sum,
                        count=metric._count,
                        min=metric._min,
                        max=metric._max,
                    )
            else:
                entry["value"] = float(metric.value)
            out.append(entry)
        return out

    def merge_state(self, state: list[dict], include_gauges: bool = False) -> None:
        """Fold a :meth:`dump_state` list into this registry.

        Counters and histograms accumulate (the natural semantics for
        per-worker deltas).  Gauges are skipped by default: they are
        point-in-time values owned by the parent (a worker's
        ``repro_pipeline_jobs`` gauge of 1 must not stomp the parent's
        real job count).  Pass ``include_gauges=True`` when every dumped
        series carries a disambiguating label (the serving cluster tags
        each worker's dump with ``worker="<i>"``), which makes setting
        gauges safe and lossless.
        """
        for entry in state:
            labels = dict(entry["labels"])
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(
                    entry["name"], buckets=tuple(entry["buckets"]), **labels
                )
                histogram.merge_counts(
                    entry["counts"], entry["sum"], entry["count"],
                    entry["min"], entry["max"],
                )
            elif kind == "gauge" and include_gauges:
                self.gauge(entry["name"], **labels).set(entry["value"])

    def snapshot(self) -> dict:
        """The whole registry as one JSON-friendly dict.

        This single shape replaces the three incompatible ``payload()``
        formats the pipeline, cache, and serving layers used to emit.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, dict] = {}
        for metric in self.collect():
            key = _series_name(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = metric.payload()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def prometheus_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        typed: set[str] = set()
        for metric in self.collect():
            if metric.name not in typed:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                typed.add(metric.name)
            if isinstance(metric, Histogram):
                for le, cumulative in metric.cumulative():
                    labels = metric.labels + (("le", le),)
                    lines.append(
                        f"{_series_name(metric.name + '_bucket', labels)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{_series_name(metric.name + '_sum', metric.labels)}"
                    f" {_format(metric.sum)}"
                )
                lines.append(
                    f"{_series_name(metric.name + '_count', metric.labels)}"
                    f" {metric.count}"
                )
            else:
                lines.append(
                    f"{_series_name(metric.name, metric.labels)}"
                    f" {_format(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    number = _number(value)
    return str(number) if isinstance(number, int) else repr(number)


#: The process-wide default registry, for callers that want one shared
#: sink without threading a registry through their call graph.
_GLOBAL_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY
