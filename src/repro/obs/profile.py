"""cProfile hooks: wrap a run, drop ``.pstats`` next to the trace.

The CLI's ``--profile`` flag uses :func:`profiled` to wrap the whole
command; the resulting file loads straight into ``pstats`` or
``snakeviz``-style viewers:

    >>> import pstats
    >>> stats = pstats.Stats("trace.pstats")  # doctest: +SKIP
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


@contextmanager
def profiled(path: str | Path | None) -> Iterator[cProfile.Profile | None]:
    """Profile the block and dump ``.pstats`` to *path* (no-op on None)."""
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))


def profile_path_for(trace_path: str | None, command: str) -> Path:
    """Where ``--profile`` writes: next to the trace, or a default."""
    if trace_path:
        return Path(trace_path).with_suffix(".pstats")
    return Path(f"repro-{command}.pstats")
