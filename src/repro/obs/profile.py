"""cProfile hooks: wrap a run, drop ``.pstats`` next to the trace.

The CLI's ``--profile`` flag uses :func:`profiled` to wrap the whole
command; the resulting file loads straight into ``pstats`` or
``snakeviz``-style viewers:

    >>> import pstats
    >>> stats = pstats.Stats("trace.pstats")  # doctest: +SKIP

The parent-process profiler cannot see work done by the process
execution backend's workers (each worker is its own interpreter), so a
profiled run advertises its output path via :func:`active_profile_path`;
the backend has every worker profile its own chunks, ships the dumps
home, and :func:`merge_worker_profiles` aggregates them into one
``<path stem>-workers.pstats`` next to the parent profile.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence

#: The path the currently-running ``profiled()`` block dumps to, or None.
_ACTIVE_PATH: Path | None = None


def active_profile_path() -> Path | None:
    """Where the in-flight ``profiled()`` block will write (or None)."""
    return _ACTIVE_PATH


@contextmanager
def profiled(path: str | Path | None) -> Iterator[cProfile.Profile | None]:
    """Profile the block and dump ``.pstats`` to *path* (no-op on None)."""
    global _ACTIVE_PATH
    if path is None:
        yield None
        return
    _ACTIVE_PATH = Path(path)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))
        _ACTIVE_PATH = None


def profile_path_for(trace_path: str | None, command: str) -> Path:
    """Where ``--profile`` writes: next to the trace, or a default."""
    if trace_path:
        return Path(trace_path).with_suffix(".pstats")
    return Path(f"repro-{command}.pstats")


def worker_profile_dir(parent_path: Path) -> Path:
    """The scratch directory worker chunk profiles dump into."""
    return parent_path.with_name(parent_path.name + ".workers.d")


def merge_worker_profiles(
    paths: Sequence[str | Path], out: str | Path
) -> Path | None:
    """Aggregate per-worker ``.pstats`` dumps into one file.

    Returns the written path, or None when *paths* is empty or none of
    them loads (a crashed worker may leave a torn dump behind — that is
    a lost sample, not a run failure).
    """
    merged: pstats.Stats | None = None
    for path in paths:
        try:
            if merged is None:
                merged = pstats.Stats(str(path))
            else:
                merged.add(str(path))
        except (OSError, TypeError, EOFError, ValueError):
            continue  # a torn dump is just a missing sample
    if merged is None:
        return None
    out = Path(out)
    merged.dump_stats(str(out))
    return out
