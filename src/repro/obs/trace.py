"""A lightweight span tracer with per-run JSONL recording.

``trace(name, **attrs)`` is a context manager that measures one unit of
work.  Spans nest (a per-thread stack links children to parents), are
thread-safe (the parallel pipeline traces from many workers into one
recorder), and cost almost nothing when no recorder is installed — the
context manager short-circuits before taking any lock.

A :class:`TraceRecorder` collects the finished spans of one run and
serializes them to JSONL, one object per line:

.. code-block:: json

    {"span": 3, "parent": 1, "name": "stage.parse", "ts": 1723.5,
     "dur_ms": 1.234, "thread": "MainThread", "attrs": {"project": "a/b"}}

``span`` is a run-unique id (ints from 1), ``parent`` links to the
enclosing span on the same thread (``null`` at the root), ``ts`` is the
wall-clock start (``time.time()``), and ``dur_ms`` is measured with
``perf_counter``.  :func:`validate_trace_line` is the schema those
lines are contract-tested (and CI-smoked) against.

The trace is the proof artifact for every caching/scaling claim: a
warm-cache run is warm *iff* its trace contains zero ``build_schema``
spans while the ``stage.*`` spans are all present.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: The JSONL schema: required key -> accepted types.
TRACE_LINE_SCHEMA: dict[str, tuple[type, ...]] = {
    "span": (int,),
    "parent": (int, type(None)),
    "name": (str,),
    "ts": (int, float),
    "dur_ms": (int, float),
    "thread": (str,),
    "attrs": (dict,),
}


@dataclass
class Span:
    """One finished (or in-flight) unit of traced work."""

    span_id: int
    parent_id: int | None
    name: str
    start_ts: float
    thread: str
    attrs: dict = field(default_factory=dict)
    duration: float = 0.0

    def payload(self) -> dict:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": round(self.start_ts, 6),
            "dur_ms": round(self.duration * 1000, 3),
            "thread": self.thread,
            "attrs": self.attrs,
        }


class TraceRecorder:
    """Collects one run's spans; serializes them to JSONL."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        return next(self._ids)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self, name: str | None = None) -> list[Span]:
        with self._lock:
            if name is None:
                return list(self._spans)
            return [span for span in self._spans if span.name == name]

    def count(self, name: str) -> int:
        return len(self.spans(name))

    def names(self) -> set[str]:
        return {span.name for span in self.spans()}

    def adopt(
        self,
        payloads: list[dict],
        parent_id: int | None = None,
        thread: str | None = None,
    ) -> int:
        """Graft spans recorded in another process onto this recorder.

        *payloads* is a list of :meth:`Span.payload` dicts from a worker
        recorder.  Span ids are re-assigned from this recorder's counter
        (worker-local ids would collide across workers), parent links
        inside the batch are remapped, and root spans of the batch are
        attached under *parent_id* (typically the parent's in-flight
        ``pipeline.run`` span).  *thread* relabels the origin so merged
        traces show which worker produced what.  Returns the number of
        spans adopted.
        """
        mapping = {payload["span"]: self.next_id() for payload in payloads}
        for payload in payloads:
            original_parent = payload["parent"]
            span = Span(
                span_id=mapping[payload["span"]],
                parent_id=(
                    mapping.get(original_parent, parent_id)
                    if original_parent is not None
                    else parent_id
                ),
                name=payload["name"],
                start_ts=payload["ts"],
                thread=thread if thread is not None else payload["thread"],
                attrs=dict(payload["attrs"]),
                duration=payload["dur_ms"] / 1000,
            )
            self.record(span)
        return len(payloads)

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(span.payload(), sort_keys=True) for span in self.spans()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


def validate_trace_line(obj: object) -> dict:
    """Check one parsed JSONL line against the documented schema.

    Returns the dict on success; raises :class:`ValueError` naming the
    first violated field otherwise.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace line must be an object, got {type(obj).__name__}")
    for key, types in TRACE_LINE_SCHEMA.items():
        if key not in obj:
            raise ValueError(f"trace line missing key {key!r}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"trace line key {key!r} has type {type(obj[key]).__name__}"
            )
    if isinstance(obj["span"], bool) or obj["span"] < 1:
        raise ValueError("span id must be a positive integer")
    if not obj["name"]:
        raise ValueError("span name must be non-empty")
    if obj["dur_ms"] < 0:
        raise ValueError("dur_ms must be >= 0")
    return obj


def read_trace(path: str | Path) -> list[dict]:
    """Parse and validate a trace JSONL file."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [validate_trace_line(json.loads(line)) for line in lines if line]


# -- the installed recorder + per-thread span stacks ----------------------

_install_lock = threading.Lock()
_recorder: TraceRecorder | None = None
_stacks = threading.local()


def install_recorder(recorder: TraceRecorder) -> TraceRecorder:
    """Make *recorder* the process's active trace sink."""
    global _recorder
    with _install_lock:
        _recorder = recorder
    return recorder


def uninstall_recorder() -> TraceRecorder | None:
    """Stop recording; returns the recorder that was active."""
    global _recorder
    with _install_lock:
        previous, _recorder = _recorder, None
    return previous


def active_recorder() -> TraceRecorder | None:
    return _recorder


def current_span_id() -> int | None:
    """The id of the innermost in-flight span on this thread (or None).

    Execution backends use this to graft worker spans under the parent's
    ``pipeline.run`` span when merging traces across processes.
    """
    if _recorder is None:
        return None
    stack = getattr(_stacks, "stack", None)
    return stack[-1] if stack else None


def reset_tracing_for_worker() -> None:
    """Drop tracing state a forked worker inherited from its parent.

    After ``fork`` the child's surviving thread still carries the
    parent's span stack and installed recorder; a worker must start from
    a clean slate or its spans would chain to span ids that only exist
    in the parent process.
    """
    global _recorder
    with _install_lock:
        _recorder = None
    _stacks.stack = []


@contextmanager
def recording(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Install a recorder for the duration of a block (restores the
    previous one on exit), yielding it for inspection."""
    global _recorder
    own = recorder if recorder is not None else TraceRecorder()
    with _install_lock:
        previous, _recorder = _recorder, own
    try:
        yield own
    finally:
        with _install_lock:
            _recorder = previous


@contextmanager
def trace(name: str, **attrs) -> Iterator[Span | None]:
    """Measure one unit of work as a span.

    Yields the in-flight :class:`Span` so callers can attach result
    attributes (``span.attrs["status"] = 200``), or ``None`` when no
    recorder is installed — the disabled path does no locking and
    allocates nothing but the generator frame.
    """
    recorder = _recorder
    if recorder is None:
        yield None
        return
    stack = getattr(_stacks, "stack", None)
    if stack is None:
        stack = _stacks.stack = []
    span = Span(
        span_id=recorder.next_id(),
        parent_id=stack[-1] if stack else None,
        name=name,
        start_ts=time.time(),
        thread=threading.current_thread().name,
        attrs=dict(attrs),
    )
    stack.append(span.span_id)
    started = time.perf_counter()
    try:
        yield span
    finally:
        span.duration = time.perf_counter() - started
        stack.pop()
        recorder.record(span)
