"""Write study artifacts: per-project measures, per-transition deltas,
taxa assignments, the funnel, and the Fig 4 summary — as CSV and JSON."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.analysis import FIG4_MEASURES, CorpusAnalysis
from repro.core.project import ProjectHistory
from repro.core.taxa import TAXA_ORDER
from repro.mining.funnel import FunnelReport

#: Column order of projects.csv.
PROJECT_FIELDS = (
    "project",
    "taxon",
    "ddl_path",
    "n_commits",
    "active_commits",
    "total_activity",
    "expansion",
    "maintenance",
    "reeds",
    "turf_commits",
    "table_insertions",
    "table_deletions",
    "tables_at_start",
    "tables_at_end",
    "attributes_at_start",
    "attributes_at_end",
    "sup_months",
    "pup_months",
    "total_repo_commits",
    "ddl_commit_share",
    "domain",
)

#: Column order of transitions.csv.
TRANSITION_FIELDS = (
    "project",
    "transition_id",
    "timestamp",
    "days_since_v0",
    "running_month",
    "running_year",
    "old_tables",
    "old_attributes",
    "new_tables",
    "new_attributes",
    "attrs_born",
    "attrs_injected",
    "attrs_deleted",
    "attrs_ejected",
    "attrs_type_changed",
    "attrs_pk_changed",
    "expansion",
    "maintenance",
    "activity",
    "is_active",
)


def project_rows(projects: Iterable[ProjectHistory], analysis: CorpusAnalysis) -> list[dict]:
    """One row per project: every Fig 4 measure plus context."""
    rows = []
    for project in projects:
        metrics = project.metrics
        rows.append(
            {
                "project": project.name,
                "taxon": analysis.assignments.get(project.name, "").value
                if project.name in analysis.assignments
                else "",
                "ddl_path": project.ddl_path,
                "n_commits": metrics.n_commits,
                "active_commits": metrics.active_commits,
                "total_activity": metrics.total_activity,
                "expansion": metrics.total_expansion,
                "maintenance": metrics.total_maintenance,
                "reeds": metrics.reeds,
                "turf_commits": metrics.turf_commits,
                "table_insertions": metrics.table_insertions,
                "table_deletions": metrics.table_deletions,
                "tables_at_start": metrics.tables_at_start,
                "tables_at_end": metrics.tables_at_end,
                "attributes_at_start": metrics.attributes_at_start,
                "attributes_at_end": metrics.attributes_at_end,
                "sup_months": metrics.sup_months,
                "pup_months": project.pup_months,
                "total_repo_commits": project.repo_stats.total_commits,
                "ddl_commit_share": round(project.ddl_commit_share, 6),
                "domain": project.domain,
            }
        )
    return rows


def transition_rows(project: ProjectHistory) -> list[dict]:
    """One row per transition of one project (the Hecate raw output)."""
    rows = []
    for transition in project.metrics.transitions:
        diff = transition.diff
        rows.append(
            {
                "project": project.name,
                "transition_id": transition.transition_id,
                "timestamp": transition.timestamp,
                "days_since_v0": round(transition.days_since_v0, 3),
                "running_month": transition.running_month,
                "running_year": transition.running_year,
                "old_tables": transition.old_size.tables,
                "old_attributes": transition.old_size.attributes,
                "new_tables": transition.new_size.tables,
                "new_attributes": transition.new_size.attributes,
                "attrs_born": diff.attrs_born,
                "attrs_injected": diff.attrs_injected,
                "attrs_deleted": diff.attrs_deleted,
                "attrs_ejected": diff.attrs_ejected,
                "attrs_type_changed": diff.attrs_type_changed,
                "attrs_pk_changed": diff.attrs_pk_changed,
                "expansion": transition.expansion,
                "maintenance": transition.maintenance,
                "activity": transition.activity,
                "is_active": int(transition.is_active),
            }
        )
    return rows


def funnel_payload(report: FunnelReport) -> dict:
    """The funnel as a JSON-friendly dict.

    Pipeline failures ride along (sorted by project for determinism) so
    an exported study is auditable: every project that crashed a stage
    is on record next to the counts it was excluded from.
    """
    return {
        "stages": dict(report.stage_rows()),
        "omitted_by_paths": {
            verdict.name: count for verdict, count in report.omitted_by_paths.items()
        },
        "rigid_share": report.rigid_share,
        "failures": [
            failure.payload()
            for failure in sorted(report.failures, key=lambda f: f.project)
        ],
    }


def stats_payload(report: FunnelReport) -> dict:
    """The pipeline stats as a JSON-friendly dict (empty if stats are off)."""
    if report.stats is None:
        return {}
    return report.stats.payload()


def write_csv(path: str | Path, rows: list[dict], fields: tuple[str, ...]) -> None:
    """Write rows with a fixed header (missing keys become empty)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fields), extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


def write_json(path: str | Path, payload: object) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def export_from_store(
    directory: str | Path,
    store,
    figures: bool = True,
) -> dict[str, Path]:
    """Re-export the full artifact set from an ingested corpus store.

    Reads the persisted :class:`~repro.core.project.ProjectHistory`
    records and funnel counts back out of a
    :class:`~repro.store.CorpusStore` — no measurement re-runs — and
    produces byte-identical artifacts to :func:`export_study` over the
    equivalent direct funnel run.
    """
    from repro.core.analysis import analyze_corpus

    report = store.funnel_report()
    analysis = analyze_corpus(report.studied + report.rigid)
    return export_study(directory, report, analysis, figures=figures)


def export_study(
    directory: str | Path,
    report: FunnelReport,
    analysis: CorpusAnalysis,
    figures: bool = True,
    stats: bool = False,
) -> dict[str, Path]:
    """Write the full artifact set into *directory*; returns the paths.

    Artifacts: ``projects.csv`` (per-project measures + taxon),
    ``transitions.csv`` (per-transition deltas over all projects),
    ``funnel.json`` (stage counts + pipeline failure records),
    ``taxa.json`` (populations & shares), ``fig4.json``
    (the per-taxon min/med/max/avg table), ``experiments.md`` (the
    generated paper-vs-measured report), and — unless ``figures=False``
    — SVG charts under ``figures/``.

    With ``stats=True`` a ``pipeline_stats.json`` (stage wall times and
    cache counters) is written as well.  It is off by default because
    timings vary run to run, and the default artifact set is expected
    to be byte-identical across runs and ``--jobs`` settings.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    everything = report.studied + report.rigid

    paths = {
        "projects": directory / "projects.csv",
        "transitions": directory / "transitions.csv",
        "funnel": directory / "funnel.json",
        "taxa": directory / "taxa.json",
        "fig4": directory / "fig4.json",
        "experiments": directory / "experiments.md",
    }
    write_csv(paths["projects"], project_rows(everything, analysis), PROJECT_FIELDS)
    all_transitions: list[dict] = []
    for project in report.studied:
        all_transitions.extend(transition_rows(project))
    write_csv(paths["transitions"], all_transitions, TRANSITION_FIELDS)
    write_json(paths["funnel"], funnel_payload(report))
    write_json(
        paths["taxa"],
        {
            taxon.value: {
                "count": analysis.population(taxon),
                "share_of_studied": analysis.share_of_studied(taxon),
            }
            for taxon in TAXA_ORDER
        },
    )
    fig4 = {}
    for taxon in TAXA_ORDER:
        profile = analysis.profiles.get(taxon)
        if profile is None or not profile.measures:
            continue
        fig4[taxon.value] = {
            measure: {
                "min": summary.minimum,
                "med": summary.median,
                "max": summary.maximum,
                "avg": summary.average,
            }
            for measure, summary in profile.measures.items()
        }
    write_json(paths["fig4"], fig4)
    if stats and report.stats is not None:
        paths["stats"] = directory / "pipeline_stats.json"
        write_json(paths["stats"], stats_payload(report))
    from repro.reporting.markdown import render_experiments_markdown

    paths["experiments"].write_text(
        render_experiments_markdown(report, analysis), encoding="utf-8"
    )
    if figures:
        from repro.viz.svg import export_figures

        for kind, path in export_figures(directory / "figures", analysis).items():
            paths[f"figure_{kind}"] = path
    return paths
