"""Persist and reload synthetic corpora as plain files.

A built corpus can be released as a directory tree of real ``.sql``
files — one subdirectory per project, one file per schema version plus
a ``versions.json`` manifest — and reloaded into in-memory repositories
on another machine or in another process.  The reloaded corpus carries
exactly the DDL histories (filler commits are not round-tripped; the
manifest records the repository-level stats they contributed), so every
schema-level measure re-derives identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.project import RepoStats, repo_stats_of
from repro.vcs.history import extract_file_history
from repro.vcs.repository import Repository


@dataclass
class CorpusDumpReport:
    """What a dump wrote — and, crucially, what it could not.

    ``skipped`` maps project name to the reason it was left out, so a
    caller releasing a corpus can assert the dump is consistent with the
    funnel (every skip should correspond to a funnel removal) instead of
    discovering silently missing projects downstream.
    """

    directory: Path
    written: list[str] = field(default_factory=list)
    skipped: dict[str, str] = field(default_factory=dict)

    def __fspath__(self) -> str:  # a dump report still works as a path
        return os.fspath(self.directory)


def dump_corpus_histories(
    directory: str | Path, repos: dict[str, Repository | None], ddl_paths: dict[str, str]
) -> CorpusDumpReport:
    """Write every project's schema history under *directory*.

    Layout::

        <directory>/<owner>__<name>/v0000.sql, v0001.sql, ...
        <directory>/<owner>__<name>/versions.json

    Returns a :class:`CorpusDumpReport`.  Projects without a repository
    (removed from GitHub), without a recorded DDL path, or whose DDL
    path has no history are not written — exactly the ones the funnel
    removes before measuring — and are reported per name in
    ``report.skipped`` rather than silently dropped.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    report = CorpusDumpReport(directory=directory)
    for name, repo in sorted(repos.items()):
        if repo is None:
            report.skipped[name] = "repository missing (removed from GitHub)"
            continue
        ddl_path = ddl_paths.get(name)
        if ddl_path is None:
            report.skipped[name] = "no DDL path recorded"
            continue
        versions = extract_file_history(repo, ddl_path)
        if not versions:
            report.skipped[name] = f"no history for DDL path {ddl_path!r}"
            continue
        slug = name.replace("/", "__")
        project_dir = directory / slug
        project_dir.mkdir(exist_ok=True)
        manifest = {
            "project": name,
            "ddl_path": ddl_path,
            "repo_stats": _stats_payload(repo),
            "versions": [],
        }
        for index, version in enumerate(versions):
            file_name = f"v{index:04d}.sql"
            (project_dir / file_name).write_bytes(version.content or b"")
            manifest["versions"].append(
                {
                    "file": file_name,
                    "commit": version.commit_oid,
                    "timestamp": version.timestamp,
                    "author": version.author,
                    "message": version.message,
                }
            )
        with open(project_dir / "versions.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        report.written.append(name)
    return report


def _stats_payload(repo: Repository) -> dict:
    stats = repo_stats_of(repo)
    return {
        "total_commits": stats.total_commits,
        "first_commit_ts": stats.first_commit_ts,
        "last_commit_ts": stats.last_commit_ts,
    }


def load_corpus_histories(
    directory: str | Path,
) -> dict[str, tuple[Repository, str, RepoStats]]:
    """Reload a dumped corpus.

    Returns project name -> (repository holding the DDL history,
    DDL path, original whole-repo stats).  The rebuilt repository
    contains one commit per schema version with the original timestamps,
    authors and messages, so Hecate measures are identical; PUP and
    commit-share come from the recorded stats.
    """
    directory = Path(directory)
    loaded: dict[str, tuple[Repository, str, RepoStats]] = {}
    for project_dir in sorted(directory.iterdir()):
        manifest_path = project_dir / "versions.json"
        if not project_dir.is_dir() or not manifest_path.exists():
            continue
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        name = manifest["project"]
        ddl_path = manifest["ddl_path"]
        repo = Repository(name)
        for entry in manifest["versions"]:
            content = (project_dir / entry["file"]).read_bytes()
            repo.commit(
                {ddl_path: content},
                author=entry["author"],
                timestamp=entry["timestamp"],
                message=entry["message"],
            )
        stats_raw = manifest["repo_stats"]
        stats = RepoStats(
            total_commits=stats_raw["total_commits"],
            first_commit_ts=stats_raw["first_commit_ts"],
            last_commit_ts=stats_raw["last_commit_ts"],
        )
        loaded[name] = (repo, ddl_path, stats)
    return loaded
