"""Persist and reload synthetic corpora as plain files.

A built corpus can be released as a directory tree of real ``.sql``
files — one subdirectory per project, one file per schema version plus
a ``versions.json`` manifest — and reloaded into in-memory repositories
on another machine or in another process.  The reloaded corpus carries
exactly the DDL histories (filler commits are not round-tripped; the
manifest records the repository-level stats they contributed), so every
schema-level measure re-derives identically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.project import RepoStats, repo_stats_of
from repro.vcs.history import extract_file_history
from repro.vcs.repository import Repository


def dump_corpus_histories(
    directory: str | Path, repos: dict[str, Repository | None], ddl_paths: dict[str, str]
) -> Path:
    """Write every project's schema history under *directory*.

    Layout::

        <directory>/<owner>__<name>/v0000.sql, v0001.sql, ...
        <directory>/<owner>__<name>/versions.json

    Returns the directory path.  Projects without a repository (removed
    from GitHub) or without the DDL path are skipped — exactly the ones
    the funnel removes before measuring.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, repo in sorted(repos.items()):
        if repo is None:
            continue
        ddl_path = ddl_paths.get(name)
        if ddl_path is None:
            continue
        versions = extract_file_history(repo, ddl_path)
        if not versions:
            continue
        slug = name.replace("/", "__")
        project_dir = directory / slug
        project_dir.mkdir(exist_ok=True)
        manifest = {
            "project": name,
            "ddl_path": ddl_path,
            "repo_stats": _stats_payload(repo),
            "versions": [],
        }
        for index, version in enumerate(versions):
            file_name = f"v{index:04d}.sql"
            (project_dir / file_name).write_bytes(version.content or b"")
            manifest["versions"].append(
                {
                    "file": file_name,
                    "commit": version.commit_oid,
                    "timestamp": version.timestamp,
                    "author": version.author,
                    "message": version.message,
                }
            )
        with open(project_dir / "versions.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
    return directory


def _stats_payload(repo: Repository) -> dict:
    stats = repo_stats_of(repo)
    return {
        "total_commits": stats.total_commits,
        "first_commit_ts": stats.first_commit_ts,
        "last_commit_ts": stats.last_commit_ts,
    }


def load_corpus_histories(
    directory: str | Path,
) -> dict[str, tuple[Repository, str, RepoStats]]:
    """Reload a dumped corpus.

    Returns project name -> (repository holding the DDL history,
    DDL path, original whole-repo stats).  The rebuilt repository
    contains one commit per schema version with the original timestamps,
    authors and messages, so Hecate measures are identical; PUP and
    commit-share come from the recorded stats.
    """
    directory = Path(directory)
    loaded: dict[str, tuple[Repository, str, RepoStats]] = {}
    for project_dir in sorted(directory.iterdir()):
        manifest_path = project_dir / "versions.json"
        if not project_dir.is_dir() or not manifest_path.exists():
            continue
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        name = manifest["project"]
        ddl_path = manifest["ddl_path"]
        repo = Repository(name)
        for entry in manifest["versions"]:
            content = (project_dir / entry["file"]).read_bytes()
            repo.commit(
                {ddl_path: content},
                author=entry["author"],
                timestamp=entry["timestamp"],
                message=entry["message"],
            )
        stats_raw = manifest["repo_stats"]
        stats = RepoStats(
            total_commits=stats_raw["total_commits"],
            first_commit_ts=stats_raw["first_commit_ts"],
            last_commit_ts=stats_raw["last_commit_ts"],
        )
        loaded[name] = (repo, ddl_path, stats)
    return loaded
