"""Reload exported study artifacts."""

from __future__ import annotations

import csv
import json
from pathlib import Path

_INT_FIELDS = {
    "n_commits",
    "active_commits",
    "total_activity",
    "expansion",
    "maintenance",
    "reeds",
    "turf_commits",
    "table_insertions",
    "table_deletions",
    "tables_at_start",
    "tables_at_end",
    "attributes_at_start",
    "attributes_at_end",
    "sup_months",
    "pup_months",
    "total_repo_commits",
}

_FLOAT_FIELDS = {"ddl_commit_share"}


def load_project_rows(path: str | Path) -> list[dict]:
    """Read ``projects.csv`` back with numeric fields restored."""
    rows: list[dict] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            row: dict = {}
            for key, value in raw.items():
                if key in _INT_FIELDS:
                    row[key] = int(value)
                elif key in _FLOAT_FIELDS:
                    row[key] = float(value)
                else:
                    row[key] = value
            rows.append(row)
    return rows


def load_study_summary(directory: str | Path) -> dict:
    """Read the JSON artifacts of one exported study directory."""
    directory = Path(directory)
    summary = {}
    for name in ("funnel", "taxa", "fig4"):
        path = directory / f"{name}.json"
        if path.exists():
            with open(path, encoding="utf-8") as handle:
                summary[name] = json.load(handle)
    return summary
