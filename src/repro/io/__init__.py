"""Export and reload of study results.

The paper publishes "all data, results, summary statistics" in a public
repository; this subpackage is the equivalent release machinery: write
the measured corpus as CSV/JSON artifacts a downstream analyst can load
in any stack, and read them back losslessly for the measures.
"""

from repro.io.export import (
    export_from_store,
    export_study,
    funnel_payload,
    project_rows,
    stats_payload,
    transition_rows,
    write_csv,
    write_json,
)
from repro.io.load import load_project_rows, load_study_summary
from repro.io.corpus_io import CorpusDumpReport, dump_corpus_histories, load_corpus_histories

__all__ = [
    "CorpusDumpReport",
    "dump_corpus_histories",
    "export_from_store",
    "export_study",
    "funnel_payload",
    "stats_payload",
    "load_corpus_histories",
    "load_project_rows",
    "load_study_summary",
    "project_rows",
    "transition_rows",
    "write_csv",
    "write_json",
]
