"""A minimal git-like version control substrate.

The study clones GitHub repositories and extracts, for one DDL file, the
ordered list of commits that touched it.  Offline we reproduce exactly
that interface: :class:`Repository` is a content-addressed store of
blobs and commits (with parents, author time and messages, supporting
branches and merges), and :mod:`repro.vcs.history` extracts per-file
version histories with the linearization policies the paper discusses
as a threat to validity (full topological order vs first-parent walk).
"""

from repro.vcs.objects import Blob, Commit, FileChange, hash_content
from repro.vcs.repository import Repository, VcsError
from repro.vcs.history import (
    FileVersion,
    LinearizationPolicy,
    extract_file_history,
    first_parent_walk,
    topological_order,
)

__all__ = [
    "Blob",
    "Commit",
    "FileChange",
    "FileVersion",
    "LinearizationPolicy",
    "Repository",
    "VcsError",
    "extract_file_history",
    "first_parent_walk",
    "hash_content",
    "topological_order",
]
