"""The repository: commit DAG, branches, and tree reconstruction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vcs.objects import Blob, Commit, FileChange, commit_oid


class VcsError(Exception):
    """Raised for invalid repository operations."""


class Repository:
    """An in-memory content-addressed repository.

    Supports the subset of git semantics the mining pipeline needs:
    committing file changes on named branches, merging branches, walking
    ancestry, and reconstructing the file tree at any commit.

    Example
    -------
    >>> repo = Repository("acme/shop")
    >>> first = repo.commit({"schema.sql": b"CREATE TABLE a (x int);"},
    ...                     author="ann", timestamp=1_500_000_000,
    ...                     message="initial schema")
    >>> repo.read_file(first, "schema.sql").text
    'CREATE TABLE a (x int);'
    """

    def __init__(self, name: str, default_branch: str = "master") -> None:
        self.name = name
        self.default_branch = default_branch
        self._blobs: dict[str, Blob] = {}
        self._commits: dict[str, Commit] = {}
        self._branches: dict[str, str] = {}
        self._order: list[str] = []  # insertion order (commit creation)

    # -- introspection ---------------------------------------------------

    @property
    def branches(self) -> dict[str, str]:
        """Branch name -> head commit oid (copy)."""
        return dict(self._branches)

    def head(self, branch: str | None = None) -> str | None:
        """Head oid of *branch* (default branch if None); None if empty."""
        return self._branches.get(branch or self.default_branch)

    def commit_count(self) -> int:
        return len(self._commits)

    def all_commits(self) -> list[Commit]:
        """All commits in creation order."""
        return [self._commits[oid] for oid in self._order]

    def get_commit(self, oid: str) -> Commit:
        try:
            return self._commits[oid]
        except KeyError:
            raise VcsError(f"unknown commit {oid!r}") from None

    def get_blob(self, oid: str) -> Blob:
        try:
            return self._blobs[oid]
        except KeyError:
            raise VcsError(f"unknown blob {oid!r}") from None

    # -- writing ----------------------------------------------------------

    def commit(
        self,
        files: dict[str, bytes | None],
        author: str,
        timestamp: int,
        message: str,
        branch: str | None = None,
        extra_parents: tuple[str, ...] = (),
    ) -> str:
        """Record a commit changing *files* on *branch*; returns its oid.

        ``files`` maps path -> new content, or ``None`` to delete the
        path.  ``extra_parents`` turns the commit into a merge.
        """
        branch = branch or self.default_branch
        parent = self._branches.get(branch)
        parents = (parent,) if parent else ()
        parents += tuple(p for p in extra_parents if p)
        changes: list[FileChange] = []
        for path, content in sorted(files.items()):
            if content is None:
                changes.append(FileChange(path, None))
            else:
                blob = Blob(content)
                self._blobs[blob.oid] = blob
                changes.append(FileChange(path, blob.oid))
        oid = commit_oid(parents, author, timestamp, message, tuple(changes))
        if oid in self._commits:
            # Identical content committed twice (can happen with merges
            # of identical states); disambiguate with a counter suffix.
            suffix = 1
            base = oid
            while oid in self._commits:
                oid = f"{base[:-8]}{suffix:08d}"
                suffix += 1
        node = Commit(
            oid=oid,
            parents=parents,
            author=author,
            timestamp=timestamp,
            message=message,
            changes=tuple(changes),
        )
        self._commits[oid] = node
        self._branches[branch] = oid
        self._order.append(oid)
        return oid

    def branch(self, name: str, at: str | None = None) -> None:
        """Create branch *name* at commit *at* (default: current head)."""
        if name in self._branches:
            raise VcsError(f"branch {name!r} already exists")
        start = at or self.head()
        if start is None:
            raise VcsError("cannot branch an empty repository")
        self._branches[name] = self.get_commit(start).oid

    def merge(
        self,
        source: str,
        target: str | None = None,
        author: str = "merge-bot",
        timestamp: int | None = None,
        message: str | None = None,
        files: dict[str, bytes | None] | None = None,
    ) -> str:
        """Merge branch *source* into *target* with a merge commit.

        ``files`` carries the merge resolution (paths whose content the
        merge commit sets); an empty resolution means target wins.
        """
        target = target or self.default_branch
        source_head = self._branches.get(source)
        if source_head is None:
            raise VcsError(f"unknown branch {source!r}")
        target_head = self._branches.get(target)
        if target_head is None:
            raise VcsError(f"unknown branch {target!r}")
        if timestamp is None:
            timestamp = max(
                self.get_commit(source_head).timestamp,
                self.get_commit(target_head).timestamp,
            ) + 1
        return self.commit(
            files or {},
            author=author,
            timestamp=timestamp,
            message=message or f"Merge branch '{source}' into {target}",
            branch=target,
            extra_parents=(source_head,),
        )

    # -- reading ------------------------------------------------------------

    def ancestry(self, start: str | None = None) -> list[Commit]:
        """All commits reachable from *start* (default head), no order
        guarantee beyond "parents before children" NOT holding — use
        :func:`repro.vcs.history.topological_order` for ordering."""
        head = start or self.head()
        if head is None:
            return []
        seen: set[str] = set()
        stack = [head]
        result: list[Commit] = []
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            node = self.get_commit(oid)
            result.append(node)
            stack.extend(node.parents)
        return result

    def tree_at(self, oid: str) -> dict[str, str]:
        """Reconstruct path -> blob oid for the tree at commit *oid*.

        For merge commits, the first parent's tree is the base and the
        merge commit's own changes are the resolution — matching the
        first-parent worldview used for file-history extraction.
        """
        chain: list[Commit] = []
        cursor: str | None = oid
        while cursor is not None:
            node = self.get_commit(cursor)
            chain.append(node)
            cursor = node.parents[0] if node.parents else None
        tree: dict[str, str] = {}
        for node in reversed(chain):
            for change in node.changes:
                if change.blob_oid is None:
                    tree.pop(change.path, None)
                else:
                    tree[change.path] = change.blob_oid
        return tree

    def read_file(self, oid: str, path: str) -> Blob | None:
        """Content of *path* at commit *oid*; None if absent."""
        blob_oid = self.tree_at(oid).get(path)
        if blob_oid is None:
            return None
        return self.get_blob(blob_oid)

    def paths_ever_touched(self) -> set[str]:
        """All paths any commit ever changed (GitHub-Activity style)."""
        paths: set[str] = set()
        for node in self._commits.values():
            paths.update(node.changed_paths())
        return paths
