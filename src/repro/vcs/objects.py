"""Object model of the VCS substrate: blobs and commits.

Objects are content-addressed with SHA-1 over a git-style header, so
identical file contents share storage and object ids are stable across
runs — a property the synthesis layer relies on for determinism.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def hash_content(kind: str, payload: bytes) -> str:
    """Git-style object id: sha1 over ``b"<kind> <len>\\0<payload>"``."""
    header = f"{kind} {len(payload)}".encode("ascii") + b"\0"
    return hashlib.sha1(header + payload).hexdigest()


@dataclass(frozen=True, slots=True)
class Blob:
    """A file content snapshot."""

    content: bytes

    @property
    def oid(self) -> str:
        return hash_content("blob", self.content)

    @property
    def text(self) -> str:
        return self.content.decode("utf-8", errors="replace")


@dataclass(frozen=True, slots=True)
class FileChange:
    """One path changed by a commit.

    ``blob_oid`` is None for deletions.  A commit's tree is the set of
    paths alive after it; we store both the delta (for history walks)
    and derive trees on demand.
    """

    path: str
    blob_oid: str | None


@dataclass(frozen=True)
class Commit:
    """A commit node in the DAG."""

    oid: str
    parents: tuple[str, ...]
    author: str
    timestamp: int  # unix epoch seconds (author time)
    message: str
    changes: tuple[FileChange, ...]

    @property
    def is_merge(self) -> bool:
        return len(self.parents) > 1

    @property
    def is_root(self) -> bool:
        return not self.parents

    def changed_paths(self) -> frozenset[str]:
        return frozenset(change.path for change in self.changes)


def commit_oid(
    parents: tuple[str, ...],
    author: str,
    timestamp: int,
    message: str,
    changes: tuple[FileChange, ...],
) -> str:
    """Deterministic id for a commit from its full content."""
    parts = [",".join(parents), author, str(timestamp), message]
    for change in changes:
        parts.append(f"{change.path}={change.blob_oid or 'DEL'}")
    return hash_content("commit", "\n".join(parts).encode("utf-8"))
