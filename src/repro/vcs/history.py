"""File-history extraction and history linearization.

The paper (Sec III.C) flags the non-linearity of git histories as a
threat to validity: "We investigate the entire schema history, whereas
one might consider focusing on a single branch of the history."  Both
policies live here:

- ``FULL``: a topological order of every commit reachable from the head
  (the paper's choice), timestamp-tie-broken for determinism;
- ``FIRST_PARENT``: walk only first parents from the head (the single
  main-branch view), the alternative the paper mentions.

E15 benchmarks the difference on merge-heavy synthetic repositories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.vcs.objects import Commit
from repro.vcs.repository import Repository


class LinearizationPolicy(enum.Enum):
    FULL = "full"
    FIRST_PARENT = "first-parent"


@dataclass(frozen=True, slots=True)
class FileVersion:
    """One version of a tracked file: the commit that changed it."""

    commit_oid: str
    timestamp: int
    author: str
    message: str
    content: bytes | None  # None when the commit deleted the file

    @property
    def text(self) -> str:
        if self.content is None:
            return ""
        return self.content.decode("utf-8", errors="replace")

    @property
    def is_deletion(self) -> bool:
        return self.content is None


def topological_order(repo: Repository, head: str | None = None) -> list[Commit]:
    """Parents-before-children order of all commits reachable from head.

    Ties (independent branches) are broken by (timestamp, oid), giving a
    deterministic, human-time-respecting linearization of the full DAG.
    """
    start = head or repo.head()
    if start is None:
        return []
    reachable = {c.oid: c for c in repo.ancestry(start)}
    remaining_parents = {
        oid: sum(1 for p in c.parents if p in reachable) for oid, c in reachable.items()
    }
    children: dict[str, list[str]] = {oid: [] for oid in reachable}
    for oid, node in reachable.items():
        for parent in node.parents:
            if parent in reachable:
                children[parent].append(oid)
    ready = sorted(
        (oid for oid, count in remaining_parents.items() if count == 0),
        key=lambda oid: (reachable[oid].timestamp, oid),
    )
    order: list[Commit] = []
    while ready:
        oid = ready.pop(0)
        order.append(reachable[oid])
        unlocked = []
        for child in children[oid]:
            remaining_parents[child] -= 1
            if remaining_parents[child] == 0:
                unlocked.append(child)
        if unlocked:
            ready.extend(unlocked)
            ready.sort(key=lambda o: (reachable[o].timestamp, o))
    if len(order) != len(reachable):  # pragma: no cover - cycle guard
        raise ValueError("commit graph contains a cycle")
    return order


def first_parent_walk(repo: Repository, head: str | None = None) -> list[Commit]:
    """The main-branch view: head, its first parent, and so on, oldest first."""
    start = head or repo.head()
    if start is None:
        return []
    chain: list[Commit] = []
    oid: str | None = start
    while oid is not None:
        node = repo.get_commit(oid)
        chain.append(node)
        oid = node.parents[0] if node.parents else None
    chain.reverse()
    return chain


def extract_file_history(
    repo: Repository,
    path: str,
    policy: LinearizationPolicy = LinearizationPolicy.FULL,
    head: str | None = None,
    include_deletions: bool = False,
) -> list[FileVersion]:
    """The schema history of *path*: ordered versions, one per commit
    that changed the file.

    This is the exact artifact Hecate consumes — "a list of versions of
    the schema DDL file" ordered over time.  With the FULL policy the
    order is topological over the whole DAG (the paper's approach); with
    FIRST_PARENT only main-line commits are considered.
    """
    if policy is LinearizationPolicy.FULL:
        ordered = topological_order(repo, head)
    else:
        ordered = first_parent_walk(repo, head)
    versions: list[FileVersion] = []
    for node in ordered:
        for change in node.changes:
            if change.path != path:
                continue
            content = None if change.blob_oid is None else repo.get_blob(change.blob_oid).content
            if content is None and not include_deletions:
                continue
            versions.append(
                FileVersion(
                    commit_oid=node.oid,
                    timestamp=node.timestamp,
                    author=node.author,
                    message=node.message,
                    content=content,
                )
            )
    return versions
